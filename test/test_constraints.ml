(* Tests for containment constraints, INDs, the integrity-constraint
   classes, and — centrally — Proposition 2.1: each integrity
   constraint is satisfied iff its containment-constraint translation
   is, validated on random databases. *)

open Ric_relational
open Ric_query
open Ric_constraints

let v = Term.var

let schema =
  Schema.make
    [
      Schema.relation "R"
        [ Schema.attribute "a"; Schema.attribute "b"; Schema.attribute "c" ];
      Schema.relation "S" [ Schema.attribute "x"; Schema.attribute "y" ];
    ]

let master_schema =
  Schema.make [ Schema.relation "M" [ Schema.attribute "m1"; Schema.attribute "m2" ] ]

let master =
  Database.of_list master_schema [ ("M", Relation.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ]) ]

let db rows_r rows_s =
  Database.of_list schema
    [ ("R", Relation.of_int_rows rows_r); ("S", Relation.of_int_rows rows_s) ]

(* ------------------------------------------------------------------ *)
(* Containment constraints *)

let test_cc_holds () =
  let cc =
    Containment.make ~name:"c"
      (Lang.Q_cq (Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "S" [ v "x"; v "y" ] ]))
      (Projection.proj "M" [ 0; 1 ])
  in
  Alcotest.(check bool) "subset holds" true
    (Containment.holds ~db:(db [] [ [ 1; 2 ] ]) ~master cc);
  Alcotest.(check bool) "violation detected" false
    (Containment.holds ~db:(db [] [ [ 9; 9 ] ]) ~master cc);
  (match Containment.violation ~db:(db [] [ [ 9; 9 ] ]) ~master cc with
   | Some t -> Alcotest.(check bool) "witness tuple" true (Tuple.equal t (Tuple.of_ints [ 9; 9 ]))
   | None -> Alcotest.fail "expected a violation witness")

let test_cc_empty_rhs () =
  let cc =
    Containment.make ~name:"noloop"
      (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "x" ] ]))
      Projection.Empty
  in
  Alcotest.(check bool) "no loops" true (Containment.holds ~db:(db [] [ [ 1; 2 ] ]) ~master cc);
  Alcotest.(check bool) "loop violates" false
    (Containment.holds ~db:(db [] [ [ 5; 5 ] ]) ~master cc)

let test_cc_arity_mismatch () =
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore
         (Containment.make
            (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "y" ] ]))
            (Projection.proj "M" [ 0; 1 ]));
       false
     with Invalid_argument _ -> true)

let test_cc_fo_lhs () =
  (* an FO containment constraint: S tuples whose partner is absent *)
  let q =
    Fo.make ~head:[ v "x" ]
      (Fo.Exists
         ( [ "y" ],
           Fo.And
             ( Fo.Atom (Atom.make "S" [ v "x"; v "y" ]),
               Fo.Not (Fo.Atom (Atom.make "S" [ v "y"; v "x" ])) ) ))
  in
  let cc = Containment.make ~name:"sym" (Lang.Q_fo q) Projection.Empty in
  Alcotest.(check bool) "not monotone" false (Containment.lhs_monotone cc);
  Alcotest.(check bool) "symmetric ok" true
    (Containment.holds ~db:(db [] [ [ 1; 2 ]; [ 2; 1 ] ]) ~master cc);
  Alcotest.(check bool) "asymmetric violates" false
    (Containment.holds ~db:(db [] [ [ 1; 2 ] ]) ~master cc)

(* ------------------------------------------------------------------ *)
(* INDs *)

let test_ind () =
  let ind = Ind.make ~name:"i" ~rel:"S" ~cols:[ 1 ] (Projection.proj "M" [ 0 ]) in
  Alcotest.(check bool) "holds" true (Ind.holds ~db:(db [] [ [ 7; 1 ] ]) ~master ind);
  Alcotest.(check bool) "fails" false (Ind.holds ~db:(db [] [ [ 7; 9 ] ]) ~master ind);
  Alcotest.(check bool) "covers" true (Ind.covers ind ~rel:"S" ~col:1);
  Alcotest.(check bool) "does not cover" false (Ind.covers ind ~rel:"S" ~col:0)

let test_ind_to_cc_agrees () =
  let ind = Ind.make ~rel:"S" ~cols:[ 0; 1 ] (Projection.proj "M" [ 0; 1 ]) in
  let cc = Ind.to_cc schema ind in
  List.iter
    (fun rows ->
      let d = db [] rows in
      Alcotest.(check bool)
        (Printf.sprintf "agree on %d rows" (List.length rows))
        (Ind.holds ~db:d ~master ind)
        (Containment.holds ~db:d ~master cc))
    [ []; [ [ 1; 2 ] ]; [ [ 1; 2 ]; [ 3; 4 ] ]; [ [ 1; 2 ]; [ 2; 1 ] ]; [ [ 0; 0 ] ] ]

(* ------------------------------------------------------------------ *)
(* Integrity constraints: direct checkers *)

let fd_ab = Fd.make ~rel:"R" ~lhs:[ 0 ] ~rhs:[ 1 ] ()

let test_fd () =
  Alcotest.(check bool) "fd holds" true (Fd.holds (db [ [ 1; 2; 3 ]; [ 1; 2; 4 ] ] []) fd_ab);
  Alcotest.(check bool) "fd fails" false (Fd.holds (db [ [ 1; 2; 3 ]; [ 1; 5; 4 ] ] []) fd_ab);
  (match Fd.violation (db [ [ 1; 2; 3 ]; [ 1; 5; 4 ] ] []) fd_ab with
   | Some _ -> ()
   | None -> Alcotest.fail "expected FD violation witness")

let cfd =
  Cfd.make ~rel:"R" ~lhs:[ 0 ] ~lhs_pattern:[ (0, Value.int 1) ] ~rhs:[ 1 ]
    ~rhs_pattern:[ (1, Value.int 2) ] ()

let test_cfd () =
  (* pattern: rows with a = 1 must have b = 2 *)
  Alcotest.(check bool) "matching rows ok" true (Cfd.holds (db [ [ 1; 2; 9 ]; [ 5; 7; 0 ] ] []) cfd);
  Alcotest.(check bool) "single-tuple violation" false (Cfd.holds (db [ [ 1; 3; 9 ] ] []) cfd);
  Alcotest.(check bool) "non-matching rows unconstrained" true
    (Cfd.holds (db [ [ 5; 3; 9 ]; [ 5; 4; 0 ] ] []) cfd)

let test_cfd_pairwise () =
  let plain = Cfd.of_fd (Fd.make ~rel:"R" ~lhs:[ 0 ] ~rhs:[ 1; 2 ] ()) in
  Alcotest.(check bool) "pair violation" false
    (Cfd.holds (db [ [ 1; 2; 3 ]; [ 1; 2; 4 ] ] []) plain);
  Alcotest.(check bool) "pair ok" true (Cfd.holds (db [ [ 1; 2; 3 ]; [ 2; 2; 4 ] ] []) plain)

let denial_no_loop =
  Denial.make (Cq.boolean [ Atom.make "S" [ v "x"; v "x" ] ])

let test_denial () =
  Alcotest.(check bool) "holds" true (Denial.holds (db [] [ [ 1; 2 ] ]) denial_no_loop);
  Alcotest.(check bool) "violated" false (Denial.holds (db [] [ [ 3; 3 ] ]) denial_no_loop);
  Alcotest.(check bool) "witness" true
    (Option.is_some (Denial.violation (db [] [ [ 3; 3 ] ]) denial_no_loop))

let cind =
  Cind.make ~lhs:("S", [ 0 ]) ~rhs:("R", [ 0 ]) ~rhs_pattern:[ (1, Value.int 7) ] ()

let test_cind () =
  (* every S.x must appear as R.a with b = 7 *)
  Alcotest.(check bool) "holds" true (Cind.holds (db [ [ 1; 7; 0 ] ] [ [ 1; 5 ] ]) cind);
  Alcotest.(check bool) "pattern mismatch" false
    (Cind.holds (db [ [ 1; 8; 0 ] ] [ [ 1; 5 ] ]) cind);
  Alcotest.(check bool) "missing partner" false (Cind.holds (db [] [ [ 1; 5 ] ]) cind)

(* ------------------------------------------------------------------ *)
(* Proposition 2.1: translations agree with direct checkers *)

let empty_master = Database.empty (Schema.make [])

let check_translation ~name direct ccs d =
  Alcotest.(check bool) name (direct d) (Containment.holds_all ~db:d ~master:empty_master ccs)

let random_db seed size =
  let state = ref (seed land 0x3FFFFFFF) in
  let rand bound =
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let rows n arity = List.init n (fun _ -> List.init arity (fun _ -> rand 3)) in
  db (rows size 3) (rows size 2)

let test_translate_fd () =
  let ccs = Translate.of_fd schema fd_ab in
  for seed = 1 to 40 do
    check_translation
      ~name:(Printf.sprintf "fd seed %d" seed)
      (fun d -> Fd.holds d fd_ab)
      ccs (random_db seed (seed mod 5))
  done

let test_translate_cfd () =
  let ccs = Translate.of_cfd schema cfd in
  for seed = 1 to 40 do
    check_translation
      ~name:(Printf.sprintf "cfd seed %d" seed)
      (fun d -> Cfd.holds d cfd)
      ccs (random_db seed (seed mod 5))
  done

let test_translate_cfd_multi_rhs () =
  let c = Cfd.of_fd (Fd.make ~rel:"R" ~lhs:[ 0; 1 ] ~rhs:[ 2 ] ()) in
  let ccs = Translate.of_cfd schema c in
  for seed = 50 to 90 do
    check_translation
      ~name:(Printf.sprintf "cfd2 seed %d" seed)
      (fun d -> Cfd.holds d c)
      ccs (random_db seed (seed mod 6))
  done

let test_translate_denial () =
  let cc = Translate.of_denial denial_no_loop in
  for seed = 1 to 40 do
    check_translation
      ~name:(Printf.sprintf "denial seed %d" seed)
      (fun d -> Denial.holds d denial_no_loop)
      [ cc ] (random_db seed (seed mod 5))
  done

let test_translate_denial_with_neq () =
  (* at most one S row per x: S(x,y) ∧ S(x,y') ∧ y ≠ y' forbidden *)
  let dn =
    Denial.make
      (Cq.boolean
         ~neqs:[ (v "y", v "y'") ]
         [ Atom.make "S" [ v "x"; v "y" ]; Atom.make "S" [ v "x"; v "y'" ] ])
  in
  let cc = Translate.of_denial dn in
  for seed = 1 to 40 do
    check_translation
      ~name:(Printf.sprintf "denial-neq seed %d" seed)
      (fun d -> Denial.holds d dn)
      [ cc ] (random_db seed (seed mod 5))
  done

let test_translate_cind () =
  let cc = Translate.of_cind schema cind in
  for seed = 1 to 40 do
    check_translation
      ~name:(Printf.sprintf "cind seed %d" seed)
      (fun d -> Cind.holds d cind)
      [ cc ] (random_db seed (seed mod 4))
  done

let test_translate_cind_plain_ind () =
  (* a CIND with no patterns is a plain IND between database relations *)
  let c = Cind.make ~lhs:("S", [ 0; 1 ]) ~rhs:("R", [ 0; 1 ]) () in
  let cc = Translate.of_cind schema c in
  for seed = 1 to 40 do
    check_translation
      ~name:(Printf.sprintf "cind-ind seed %d" seed)
      (fun d -> Cind.holds d c)
      [ cc ] (random_db seed (seed mod 4))
  done

(* The paper's example CFD: dept = "BU" ⇒ eid → cid on Supt. *)
let test_paper_cfd_example () =
  let supt_schema =
    Schema.make
      [ Schema.relation "Supt" [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ] ]
  in
  let c =
    Cfd.make ~rel:"Supt" ~lhs:[ 0; 1 ] ~lhs_pattern:[ (1, Value.str "BU") ] ~rhs:[ 2 ] ()
  in
  let mk rows =
    Database.of_list supt_schema [ ("Supt", Relation.of_str_rows rows) ]
  in
  let ccs = Translate.of_cfd supt_schema c in
  let ok = mk [ [ "e1"; "BU"; "c1" ]; [ "e1"; "AC"; "c2" ]; [ "e2"; "AC"; "c3" ]; [ "e2"; "AC"; "c4" ] ] in
  let bad = mk [ [ "e1"; "BU"; "c1" ]; [ "e1"; "BU"; "c2" ] ] in
  Alcotest.(check bool) "BU key holds" true (Cfd.holds ok c);
  Alcotest.(check bool) "translation agrees (ok)" true
    (Containment.holds_all ~db:ok ~master:empty_master ccs);
  Alcotest.(check bool) "BU key violated" false (Cfd.holds bad c);
  Alcotest.(check bool) "translation agrees (bad)" false
    (Containment.holds_all ~db:bad ~master:empty_master ccs)

(* ------------------------------------------------------------------ *)
(* Constraint-set normalisation *)

let test_optimize_unsat_dropped () =
  let q =
    Cq.make
      ~eqs:[ (v "x", Term.int 1); (v "x", Term.int 2) ]
      ~head:[ v "x" ]
      [ Atom.make "S" [ v "x"; v "y" ] ]
  in
  let cc = Containment.make ~name:"unsat" (Lang.Q_cq q) Projection.Empty in
  Alcotest.(check int) "dropped" 0 (List.length (Optimize.normalize schema [ cc ]));
  (match Optimize.dropped schema [ cc ] with
   | [ (_, reason) ] ->
     Alcotest.(check bool) "reason mentions unsatisfiable" true
       (String.length reason > 0)
   | _ -> Alcotest.fail "expected one dropped constraint")

let test_optimize_subsumption () =
  (* q1 (a self-join pattern) is contained in q2 (any S row); with the
     same target the specific one is redundant *)
  let q1 =
    Cq.make ~head:[ v "x" ]
      [ Atom.make "S" [ v "x"; v "y" ]; Atom.make "S" [ v "y"; v "x" ] ]
  in
  let q2 = Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "y" ] ] in
  let cc1 = Containment.make ~name:"specific" (Lang.Q_cq q1) (Projection.proj "M" [ 0 ]) in
  let cc2 = Containment.make ~name:"general" (Lang.Q_cq q2) (Projection.proj "M" [ 0 ]) in
  let kept = Optimize.normalize schema [ cc1; cc2 ] in
  Alcotest.(check int) "one survives" 1 (List.length kept);
  Alcotest.(check string) "the general one" "general"
    (List.hd kept).Containment.cc_name

let test_optimize_different_targets_kept () =
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "y" ] ] in
  let cc1 = Containment.make ~name:"a" (Lang.Q_cq q) (Projection.proj "M" [ 0 ]) in
  let cc2 = Containment.make ~name:"b" (Lang.Q_cq q) (Projection.proj "M" [ 1 ]) in
  Alcotest.(check int) "both kept" 2 (List.length (Optimize.normalize schema [ cc1; cc2 ]))

let test_optimize_duplicates () =
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "y" ] ] in
  let cc name = Containment.make ~name (Lang.Q_cq q) (Projection.proj "M" [ 0 ]) in
  Alcotest.(check int) "one of two equals" 1
    (List.length (Optimize.normalize schema [ cc "a"; cc "b" ]))

let prop_optimize_sound =
  QCheck2.Test.make ~name:"normalisation preserves satisfaction" ~count:100
    QCheck2.Gen.(list_size (int_bound 6) (pair (int_bound 2) (int_bound 2)))
    (fun rows ->
      let d = db [] (List.map (fun (a, b) -> [ a; b ]) rows) in
      let ccs =
        [
          Containment.make ~name:"all"
            (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "y" ] ]))
            (Projection.proj "M" [ 0 ]);
          Containment.make ~name:"loop"
            (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x"; v "x" ] ]))
            (Projection.proj "M" [ 0 ]);
          Containment.make ~name:"pair"
            (Lang.Q_cq
               (Cq.make ~head:[ v "x" ]
                  [ Atom.make "S" [ v "x"; v "y" ]; Atom.make "S" [ v "y"; v "z" ] ]))
            (Projection.proj "M" [ 0 ]);
        ]
      in
      Containment.holds_all ~db:d ~master ccs
      = Containment.holds_all ~db:d ~master (Optimize.normalize schema ccs))

(* ------------------------------------------------------------------ *)
(* FD theory: closures, keys, minimal covers *)

let fd rel lhs rhs = Fd.make ~rel ~lhs ~rhs ()

let textbook =
  (* R(a b c d): a → b, b → c *)
  [ fd "R" [ 0 ] [ 1 ]; fd "R" [ 1 ] [ 2 ] ]

let test_fd_closure () =
  Alcotest.(check (list int)) "a+ = {a,b,c}" [ 0; 1; 2 ] (Fd_theory.closure textbook [ 0 ]);
  Alcotest.(check (list int)) "b+ = {b,c}" [ 1; 2 ] (Fd_theory.closure textbook [ 1 ]);
  Alcotest.(check (list int)) "d+ = {d}" [ 2 ] (Fd_theory.closure textbook [ 2 ])

let test_fd_implies () =
  Alcotest.(check bool) "transitivity" true (Fd_theory.implies textbook (fd "R" [ 0 ] [ 2 ]));
  Alcotest.(check bool) "augmentation" true
    (Fd_theory.implies textbook (fd "R" [ 0; 2 ] [ 1 ]));
  Alcotest.(check bool) "no reverse" false (Fd_theory.implies textbook (fd "R" [ 2 ] [ 0 ]))

let test_fd_keys () =
  (* R has arity 3 here: a → b, b → c makes {a} the only key *)
  Alcotest.(check bool) "a is a key" true (Fd_theory.is_key textbook ~arity:3 [ 0 ]);
  Alcotest.(check bool) "b is not" false (Fd_theory.is_key textbook ~arity:3 [ 1 ]);
  Alcotest.(check (list (list int))) "candidate keys" [ [ 0 ] ]
    (Fd_theory.candidate_keys textbook ~arity:3)

let test_fd_minimal_cover () =
  (* a → bc, b → c, a → c: the cover drops a → c and splits rhs *)
  let fds = [ fd "R" [ 0 ] [ 1; 2 ]; fd "R" [ 1 ] [ 2 ]; fd "R" [ 0 ] [ 2 ] ] in
  let cover = Fd_theory.minimal_cover fds in
  Alcotest.(check bool) "equivalent" true (Fd_theory.equivalent fds cover);
  Alcotest.(check bool) "smaller" true (List.length cover <= 2);
  List.iter
    (fun (f : Fd.t) -> Alcotest.(check int) "singleton rhs" 1 (List.length f.Fd.rhs))
    cover

let test_fd_extraneous_lhs () =
  (* ab → c with a → b: b is extraneous... actually a⁺ = {a,b} so
     a → c suffices *)
  let fds = [ fd "R" [ 0; 1 ] [ 2 ]; fd "R" [ 0 ] [ 1 ] ] in
  let cover = Fd_theory.minimal_cover fds in
  Alcotest.(check bool) "equivalent" true (Fd_theory.equivalent fds cover);
  Alcotest.(check bool) "ab → c shrunk to a → c" true
    (List.exists (fun (f : Fd.t) -> f.Fd.lhs = [ 0 ] && f.Fd.rhs = [ 2 ]) cover)

let prop_minimal_cover_equivalent =
  QCheck2.Test.make ~name:"minimal cover is equivalent to the input" ~count:100
    QCheck2.Gen.(
      list_size (int_bound 5)
        (pair (list_size (int_range 1 2) (int_bound 3)) (list_size (int_range 1 2) (int_bound 3))))
    (fun raw ->
      let fds =
        List.filter_map
          (fun (lhs, rhs) ->
            let lhs = List.sort_uniq compare lhs and rhs = List.sort_uniq compare rhs in
            if lhs = [] || rhs = [] then None else Some (fd "R" lhs rhs))
          raw
      in
      Fd_theory.equivalent fds (Fd_theory.minimal_cover fds))

(* ------------------------------------------------------------------ *)
(* Properties: the same equivalences on generated databases *)

let db_gen =
  QCheck2.Gen.(
    map2
      (fun r s ->
        db
          (List.map (fun (a, b, c) -> [ a; b; c ]) r)
          (List.map (fun (a, b) -> [ a; b ]) s))
      (list_size (int_bound 6) (triple (int_bound 2) (int_bound 2) (int_bound 2)))
      (list_size (int_bound 6) (pair (int_bound 2) (int_bound 2))))

let prop_fd_translation =
  QCheck2.Test.make ~name:"Prop 2.1: FD ⟺ its CC translation" ~count:150 db_gen (fun d ->
      Fd.holds d fd_ab
      = Containment.holds_all ~db:d ~master:empty_master (Translate.of_fd schema fd_ab))

let prop_cfd_translation =
  QCheck2.Test.make ~name:"Prop 2.1: CFD ⟺ its CC translation" ~count:150 db_gen (fun d ->
      Cfd.holds d cfd
      = Containment.holds_all ~db:d ~master:empty_master (Translate.of_cfd schema cfd))

let prop_cind_translation =
  QCheck2.Test.make ~name:"Prop 2.1: CIND ⟺ its FO CC translation" ~count:150 db_gen
    (fun d ->
      Cind.holds d cind
      = Containment.holds_all ~db:d ~master:empty_master [ Translate.of_cind schema cind ])

let prop_denial_translation =
  QCheck2.Test.make ~name:"Prop 2.1: denial ⟺ its CC translation" ~count:150 db_gen
    (fun d ->
      Denial.holds d denial_no_loop
      = Containment.holds_all ~db:d ~master:empty_master
          [ Translate.of_denial denial_no_loop ])

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_fd_translation; prop_cfd_translation; prop_cind_translation;
      prop_denial_translation; prop_minimal_cover_equivalent; prop_optimize_sound ]

let () =
  Alcotest.run "constraints"
    [
      ( "containment",
        [
          Alcotest.test_case "holds / violation" `Quick test_cc_holds;
          Alcotest.test_case "empty rhs" `Quick test_cc_empty_rhs;
          Alcotest.test_case "arity mismatch" `Quick test_cc_arity_mismatch;
          Alcotest.test_case "FO lhs" `Quick test_cc_fo_lhs;
        ] );
      ( "ind",
        [
          Alcotest.test_case "holds / covers" `Quick test_ind;
          Alcotest.test_case "to_cc agrees" `Quick test_ind_to_cc_agrees;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "fd" `Quick test_fd;
          Alcotest.test_case "cfd" `Quick test_cfd;
          Alcotest.test_case "cfd pairwise" `Quick test_cfd_pairwise;
          Alcotest.test_case "denial" `Quick test_denial;
          Alcotest.test_case "cind" `Quick test_cind;
        ] );
      ( "prop-2.1",
        [
          Alcotest.test_case "fd translation" `Quick test_translate_fd;
          Alcotest.test_case "cfd translation" `Quick test_translate_cfd;
          Alcotest.test_case "cfd multi-lhs" `Quick test_translate_cfd_multi_rhs;
          Alcotest.test_case "denial translation" `Quick test_translate_denial;
          Alcotest.test_case "denial with neq" `Quick test_translate_denial_with_neq;
          Alcotest.test_case "cind translation" `Quick test_translate_cind;
          Alcotest.test_case "cind as plain ind" `Quick test_translate_cind_plain_ind;
          Alcotest.test_case "paper BU example" `Quick test_paper_cfd_example;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "unsatisfiable dropped" `Quick test_optimize_unsat_dropped;
          Alcotest.test_case "subsumption" `Quick test_optimize_subsumption;
          Alcotest.test_case "different targets kept" `Quick test_optimize_different_targets_kept;
          Alcotest.test_case "duplicates" `Quick test_optimize_duplicates;
        ] );
      ( "fd-theory",
        [
          Alcotest.test_case "closure" `Quick test_fd_closure;
          Alcotest.test_case "implication" `Quick test_fd_implies;
          Alcotest.test_case "keys" `Quick test_fd_keys;
          Alcotest.test_case "minimal cover" `Quick test_fd_minimal_cover;
          Alcotest.test_case "extraneous lhs" `Quick test_fd_extraneous_lhs;
        ] );
      ("properties", properties);
    ]
