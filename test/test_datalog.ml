(* Tests for the datalog (FP) engine: fixpoints, strategies,
   safety, and the transitive-closure workhorse. *)

open Ric_relational
open Ric_query

let relation_testable = Alcotest.testable Relation.pp Relation.equal
let v = Term.var
let i = Term.int

let schema = Schema.make [ Schema.relation "E" [ Schema.attribute "s"; Schema.attribute "d" ] ]

let chain n =
  Database.of_list schema
    [ ("E", Relation.of_int_rows (List.init n (fun k -> [ k; k + 1 ]))) ]

let tc = Datalog.transitive_closure ~edge:"E" ~out:"tc"

let test_tc_chain () =
  let d = chain 4 in
  let result = Datalog.eval d tc in
  (* pairs (i, j) with i < j ≤ 4 *)
  Alcotest.(check int) "closure size" 10 (Relation.cardinal result);
  Alcotest.(check bool) "0 reaches 4" true (Relation.mem (Tuple.of_ints [ 0; 4 ]) result);
  Alcotest.(check bool) "no reverse" false (Relation.mem (Tuple.of_ints [ 4; 0 ]) result)

let test_tc_cycle () =
  let d =
    Database.of_list schema [ ("E", Relation.of_int_rows [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ]
  in
  let result = Datalog.eval d tc in
  Alcotest.(check int) "complete digraph on the cycle" 9 (Relation.cardinal result)

let test_naive_seminaive_agree () =
  let d = chain 6 in
  Alcotest.check relation_testable "strategies agree"
    (Datalog.eval ~strategy:Datalog.Naive d tc)
    (Datalog.eval ~strategy:Datalog.Seminaive d tc)

let test_empty_edb () =
  Alcotest.(check bool) "empty fixpoint" true
    (Relation.is_empty (Datalog.eval (Database.empty schema) tc))

let test_rule_with_neq () =
  (* pairs at distance ≥ 1 with distinct endpoints *)
  let p =
    Datalog.program
      [
        Datalog.rule (Atom.make "r" [ v "x"; v "y" ])
          [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]); Datalog.Neq (v "x", v "y") ];
      ]
      ~output:"r"
  in
  let d = Database.of_list schema [ ("E", Relation.of_int_rows [ [ 0; 0 ]; [ 0; 1 ] ]) ] in
  Alcotest.check relation_testable "neq filters" (Relation.of_int_rows [ [ 0; 1 ] ])
    (Datalog.eval d p)

let test_rule_with_eq () =
  (* eq binds a head variable through equality elimination *)
  let p =
    Datalog.program
      [
        Datalog.rule
          (Atom.make "r" [ v "x"; v "k" ])
          [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]); Datalog.Eq (v "k", i 42) ];
      ]
      ~output:"r"
  in
  let d = chain 1 in
  Alcotest.check relation_testable "eq substitution" (Relation.of_int_rows [ [ 0; 42 ] ])
    (Datalog.eval d p)

let test_unsafe_rule () =
  Alcotest.(check bool) "unsafe rule rejected" true
    (try
       ignore (Datalog.rule (Atom.make "r" [ v "z" ]) [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]) ]);
       false
     with Invalid_argument _ -> true)

let test_arity_clash () =
  Alcotest.(check bool) "arity clash rejected" true
    (try
       ignore
         (Datalog.program
            [
              Datalog.rule (Atom.make "r" [ v "x" ]) [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]) ];
              Datalog.rule (Atom.make "r" [ v "x"; v "y" ]) [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]) ];
            ]
            ~output:"r");
       false
     with Invalid_argument _ -> true)

let test_fact_rule () =
  let p =
    Datalog.program
      [
        Datalog.rule (Atom.make "r" [ i 7 ]) [];
        Datalog.rule (Atom.make "r" [ v "x" ]) [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]) ];
      ]
      ~output:"r"
  in
  let d = chain 1 in
  Alcotest.check relation_testable "fact + derived" (Relation.of_int_rows [ [ 0 ]; [ 7 ] ])
    (Datalog.eval d p)

let test_boolean_program () =
  let p =
    Datalog.program
      [ Datalog.rule (Atom.make "ok" []) [ Datalog.Pos (Atom.make "E" [ v "x"; v "x" ]) ] ]
      ~output:"ok"
  in
  Alcotest.(check bool) "no self loop" false (Datalog.holds (chain 3) p);
  let with_loop = Database.add_tuple (chain 3) "E" (Tuple.of_ints [ 9; 9 ]) in
  Alcotest.(check bool) "self loop" true (Datalog.holds with_loop p)

let test_iterations () =
  Alcotest.(check bool) "chain needs rounds proportional to length" true
    (Datalog.iterations (chain 8) tc > Datalog.iterations (chain 2) tc)

let test_output_edb () =
  let p =
    Datalog.program
      [ Datalog.rule (Atom.make "r" [ v "x" ]) [ Datalog.Pos (Atom.make "E" [ v "x"; v "y" ]) ] ]
      ~output:"E"
  in
  let d = chain 2 in
  Alcotest.check relation_testable "EDB output passes through" (Database.relation d "E")
    (Datalog.eval d p)

(* Properties *)

let db_gen =
  QCheck2.Gen.(
    map
      (fun rows ->
        Database.of_list schema
          [ ("E", Relation.of_tuples (List.map (fun (a, b) -> Tuple.of_ints [ a; b ]) rows)) ])
      (list_size (int_bound 10) (pair (int_bound 5) (int_bound 5))))

let reference_tc d =
  (* Floyd–Warshall style reference *)
  let nodes = List.sort_uniq Value.compare (Database.adom d) in
  let edges = Database.relation d "E" in
  let reach = Hashtbl.create 64 in
  Relation.iter (fun t -> Hashtbl.replace reach (Tuple.get t 0, Tuple.get t 1) ()) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            List.iter
              (fun c ->
                if
                  Hashtbl.mem reach (a, b) && Hashtbl.mem reach (b, c)
                  && not (Hashtbl.mem reach (a, c))
                then begin
                  Hashtbl.replace reach (a, c) ();
                  changed := true
                end)
              nodes)
          nodes)
      nodes
  done;
  Hashtbl.fold (fun (a, b) () acc -> Relation.add (Tuple.make [ a; b ]) acc) reach
    Relation.empty

let prop_tc_reference =
  QCheck2.Test.make ~name:"datalog TC agrees with Floyd-Warshall" ~count:60 db_gen (fun d ->
      Relation.equal (Datalog.eval d tc) (reference_tc d))

let prop_strategies_agree =
  QCheck2.Test.make ~name:"naive and semi-naive agree" ~count:60 db_gen (fun d ->
      Relation.equal
        (Datalog.eval ~strategy:Datalog.Naive d tc)
        (Datalog.eval ~strategy:Datalog.Seminaive d tc))

let prop_monotone =
  QCheck2.Test.make ~name:"datalog is monotone" ~count:60 QCheck2.Gen.(pair db_gen db_gen)
    (fun (d1, d2) ->
      Relation.subset (Datalog.eval d1 tc) (Datalog.eval (Database.union d1 d2) tc))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tc_reference; prop_strategies_agree; prop_monotone ]

let () =
  Alcotest.run "datalog"
    [
      ( "fixpoint",
        [
          Alcotest.test_case "tc on a chain" `Quick test_tc_chain;
          Alcotest.test_case "tc on a cycle" `Quick test_tc_cycle;
          Alcotest.test_case "strategies agree" `Quick test_naive_seminaive_agree;
          Alcotest.test_case "empty EDB" `Quick test_empty_edb;
          Alcotest.test_case "iterations grow" `Quick test_iterations;
        ] );
      ( "rules",
        [
          Alcotest.test_case "inequality literal" `Quick test_rule_with_neq;
          Alcotest.test_case "equality literal" `Quick test_rule_with_eq;
          Alcotest.test_case "unsafe rejected" `Quick test_unsafe_rule;
          Alcotest.test_case "arity clash rejected" `Quick test_arity_clash;
          Alcotest.test_case "fact rules" `Quick test_fact_rule;
          Alcotest.test_case "boolean program" `Quick test_boolean_program;
          Alcotest.test_case "EDB output" `Quick test_output_edb;
        ] );
      ("properties", properties);
    ]
