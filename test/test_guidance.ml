(* Dedicated coverage for Ric_complete.Guidance: every audit verdict,
   the replay loop's round accounting, and the shape of the collected
   to-do list. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let v = Term.var

let schema =
  Schema.make
    [
      Schema.relation "R"
        [ Schema.attribute "a"; Schema.attribute ~dom:Domain.boolean "b" ];
    ]

let master_schema = Schema.make [ Schema.relation "M" [ Schema.attribute "x" ] ]

let m_master ids =
  Database.of_list master_schema
    [ ("M", Relation.of_tuples (List.map (fun i -> Tuple.of_ints [ i ]) ids)) ]

let bound_by_master =
  Containment.make ~name:"bound"
    (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; v "b" ] ]))
    (Projection.proj "M" [ 0 ])

let q_all = Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; v "b" ] ])

let audit ?max_rounds ?(ccs = [ bound_by_master ]) ~master ~db q =
  Guidance.audit ?max_rounds ~schema ~master ~ccs ~db q

let r_rows rows = Database.of_list schema [ ("R", Relation.of_int_rows rows) ]

let check_completable name result ~master ~db q =
  match result with
  | Guidance.Completable { additions; completed; rounds } ->
    Alcotest.(check bool) (name ^ ": at least one round") true (rounds >= 1);
    Alcotest.(check bool) (name ^ ": something to collect") true
      (Database.total_tuples additions >= 1);
    (* the completed database is exactly db ∪ additions *)
    Alcotest.(check int)
      (name ^ ": completed = db + additions")
      (Database.total_tuples completed)
      (Database.total_tuples db + Database.total_tuples additions);
    (* additions never repeat existing data *)
    Alcotest.(check bool) (name ^ ": additions disjoint") true
      (Relation.is_empty
         (Relation.inter (Database.relation additions "R") (Database.relation db "R")));
    (* and the decider agrees the result is complete *)
    Alcotest.(check bool) (name ^ ": completed verified") true
      (Rcdp.decide ~schema ~master ~ccs:[ bound_by_master ] ~db:completed q
       = Rcdp.Complete)
  | r -> Alcotest.failf "%s: expected completable, got %a" name Guidance.pp_audit r

let test_already_complete () =
  (* every admissible R row projects into M = {1}; both b-values present *)
  let master = m_master [ 1 ] in
  let db = r_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  match audit ~master ~db q_all with
  | Guidance.Already_complete -> ()
  | r -> Alcotest.failf "expected already complete, got %a" Guidance.pp_audit r

let test_completable_one_missing () =
  let master = m_master [ 1; 2 ] in
  let db = r_rows [ [ 1; 0 ]; [ 1; 1 ] ] in
  let result = audit ~master ~db q_all in
  check_completable "one missing" result ~master ~db q_all;
  (* the missing master id must show up in the to-collect list *)
  match result with
  | Guidance.Completable { additions; _ } ->
    Alcotest.(check bool) "collects an x=2 witness" true
      (Relation.exists
         (fun t -> Value.equal (Tuple.get t 0) (Value.int 2))
         (Database.relation additions "R"))
  | _ -> assert false

let test_completable_multi_round () =
  let master = m_master [ 1; 2; 3; 4 ] in
  let db = r_rows [ [ 1; 0 ] ] in
  let result = audit ~master ~db q_all in
  check_completable "multi round" result ~master ~db q_all;
  match result with
  | Guidance.Completable { additions; _ } ->
    (* three master ids are unrepresented: all must be collected *)
    List.iter
      (fun missing ->
        Alcotest.(check bool)
          (Printf.sprintf "collects x=%d" missing)
          true
          (Relation.exists
             (fun t -> Value.equal (Tuple.get t 0) (Value.int missing))
             (Database.relation additions "R")))
      [ 2; 3; 4 ]
  | _ -> assert false

let test_completable_constant_query () =
  (* a query selecting on the finite attribute still audits cleanly *)
  let q_b = Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; Term.int 1 ] ]) in
  let master = m_master [ 1 ] in
  let db = r_rows [ [ 1; 0 ] ] in
  match audit ~master ~db q_b with
  | Guidance.Completable { additions; _ } ->
    Alcotest.(check bool) "collects the b=1 row" true
      (Relation.mem (Tuple.of_ints [ 1; 1 ]) (Database.relation additions "R"))
  | r -> Alcotest.failf "expected completable, got %a" Guidance.pp_audit r

let test_not_completable_unconstrained () =
  (* no constraint at all: any fresh tuple extends the answer forever *)
  let master = m_master [ 1 ] in
  let db = Database.empty schema in
  match audit ~ccs:[] ~master ~db q_all with
  | Guidance.Not_completable { reason } ->
    Alcotest.(check bool) "reason is explained" true (String.length reason > 0)
  | r -> Alcotest.failf "expected not completable, got %a" Guidance.pp_audit r

let test_inconclusive_when_rounds_exhausted () =
  let master = m_master [ 1; 2; 3 ] in
  let db = r_rows [ [ 1; 0 ] ] in
  match audit ~max_rounds:0 ~master ~db q_all with
  | Guidance.Inconclusive { reason } ->
    Alcotest.(check bool) "reason mentions the budget" true (String.length reason > 0)
  | r -> Alcotest.failf "expected inconclusive, got %a" Guidance.pp_audit r

let test_rounds_monotone_in_gap () =
  (* a wider gap between db and the complete point cannot need fewer
     rounds than a narrower one *)
  let rounds_for master db =
    match audit ~master ~db q_all with
    | Guidance.Completable { rounds; _ } -> rounds
    | r -> Alcotest.failf "expected completable, got %a" Guidance.pp_audit r
  in
  let narrow = rounds_for (m_master [ 1; 2 ]) (r_rows [ [ 1; 0 ] ]) in
  let wide = rounds_for (m_master [ 1; 2; 3; 4; 5 ]) (r_rows [ [ 1; 0 ] ]) in
  Alcotest.(check bool) "wide gap >= narrow gap" true (wide >= narrow)

let test_pp_audit_renders () =
  let master = m_master [ 1; 2 ] in
  let db = r_rows [ [ 1; 0 ] ] in
  List.iter
    (fun result ->
      Alcotest.(check bool) "pp output non-empty" true
        (String.length (Format.asprintf "%a" Guidance.pp_audit result) > 0))
    [
      audit ~master ~db q_all;
      audit ~master ~db:(r_rows [ [ 1; 0 ]; [ 1; 1 ]; [ 2; 0 ]; [ 2; 1 ] ]) q_all;
      audit ~ccs:[] ~master ~db q_all;
      audit ~max_rounds:0 ~master ~db q_all;
    ]

let () =
  Alcotest.run "guidance"
    [
      ( "audit",
        [
          Alcotest.test_case "already complete" `Quick test_already_complete;
          Alcotest.test_case "completable, one missing" `Quick test_completable_one_missing;
          Alcotest.test_case "completable, multi round" `Quick test_completable_multi_round;
          Alcotest.test_case "completable, constant query" `Quick
            test_completable_constant_query;
          Alcotest.test_case "not completable when unconstrained" `Quick
            test_not_completable_unconstrained;
          Alcotest.test_case "inconclusive when rounds exhausted" `Quick
            test_inconclusive_when_rounds_exhausted;
          Alcotest.test_case "rounds monotone in gap" `Quick test_rounds_monotone_in_gap;
          Alcotest.test_case "pp renders" `Quick test_pp_audit_renders;
        ] );
    ]
