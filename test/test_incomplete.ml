(* Tests for the Section 5 extension: conditional tables, possible
   worlds, certain/possible answers, and relative completeness with
   missing values. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_incomplete

let relation_testable = Alcotest.testable Relation.pp Relation.equal
let v = Term.var
let vals n = List.init n (fun k -> Value.Int k)

let schema =
  Schema.make
    [ Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ] ]

(* ------------------------------------------------------------------ *)
(* C-table semantics *)

let test_ground_table_single_world () =
  let tab =
    Ctable.make ~rel:"R" ~arity:2 [ Ctable.ground (Tuple.of_ints [ 1; 2 ]) ]
  in
  Alcotest.(check bool) "v-table" true (Ctable.is_v_table tab);
  (match Ctable.worlds ~values:(vals 3) tab with
   | [ w ] -> Alcotest.check relation_testable "one world" (Relation.of_int_rows [ [ 1; 2 ] ]) w
   | ws -> Alcotest.failf "expected one world, got %d" (List.length ws))

let test_null_enumerates () =
  let tab =
    Ctable.make ~rel:"R" ~arity:2 [ Ctable.row [ Ctable.Const (Value.int 1); Ctable.Null "x" ] ]
  in
  Alcotest.(check int) "3 worlds for one null over 3 values" 3
    (List.length (Ctable.worlds ~values:(vals 3) tab))

let test_guard_drops_row () =
  (* the row exists only when x ≠ 0 *)
  let tab =
    Ctable.make ~rel:"R" ~arity:2
      [
        Ctable.row
          ~guard:[ Ctable.Neq (Ctable.Null "x", Ctable.Const (Value.int 0)) ]
          [ Ctable.Null "x"; Ctable.Const (Value.int 9) ];
      ]
  in
  let ws = Ctable.worlds ~values:(vals 3) tab in
  (* x = 0 gives the empty world; x ∈ {1,2} give singleton worlds *)
  Alcotest.(check int) "three distinct worlds" 3 (List.length ws);
  Alcotest.(check bool) "empty world present" true (List.exists Relation.is_empty ws)

let test_global_condition_filters () =
  let tab =
    Ctable.make ~rel:"R" ~arity:2
      ~global:[ Ctable.Eq (Ctable.Null "x", Ctable.Const (Value.int 1)) ]
      [ Ctable.row [ Ctable.Null "x"; Ctable.Null "x" ] ]
  in
  (match Ctable.worlds ~values:(vals 3) tab with
   | [ w ] ->
     Alcotest.check relation_testable "only x = 1 survives"
       (Relation.of_int_rows [ [ 1; 1 ] ]) w
   | ws -> Alcotest.failf "expected one world, got %d" (List.length ws))

let test_shared_null_correlates () =
  (* the same null twice in one row: both cells agree in every world *)
  let tab =
    Ctable.make ~rel:"R" ~arity:2 [ Ctable.row [ Ctable.Null "x"; Ctable.Null "x" ] ]
  in
  List.iter
    (fun w ->
      Relation.iter
        (fun t ->
          Alcotest.(check bool) "diagonal" true (Value.equal (Tuple.get t 0) (Tuple.get t 1)))
        w)
    (Ctable.worlds ~values:(vals 3) tab)

let test_world_dedup () =
  (* two rows with independent nulls can coincide; worlds deduplicate *)
  let tab =
    Ctable.make ~rel:"R" ~arity:2
      [
        Ctable.row [ Ctable.Null "x"; Ctable.Const (Value.int 0) ];
        Ctable.row [ Ctable.Null "y"; Ctable.Const (Value.int 0) ];
      ]
  in
  let ws = Ctable.worlds ~values:(vals 2) tab in
  (* {x,y} ⊆ {0,1}²: worlds are {(0,0)}, {(1,0)}, {(0,0),(1,0)} *)
  Alcotest.(check int) "three distinct worlds" 3 (List.length ws)

(* ------------------------------------------------------------------ *)
(* Certain and possible answers *)

let q_first = Cq.make ~head:[ v "a" ] [ Atom.make "R" [ v "a"; v "b" ] ]

let test_certain_vs_possible () =
  let cdb =
    Cdatabase.make schema
      [
        Ctable.make ~rel:"R" ~arity:2
          [
            Ctable.ground (Tuple.of_ints [ 7; 0 ]);
            Ctable.row [ Ctable.Null "x"; Ctable.Const (Value.int 0) ];
          ];
      ]
  in
  (* 7 is in every world; the null row contributes possibly *)
  let values = [ Value.int 7; Value.int 8 ] in
  Alcotest.check relation_testable "certain" (Relation.of_int_rows [ [ 7 ] ])
    (Cdatabase.certain_answers ~values cdb (Lang.Q_cq q_first));
  Alcotest.check relation_testable "possible" (Relation.of_int_rows [ [ 7 ]; [ 8 ] ])
    (Cdatabase.possible_answers ~values cdb (Lang.Q_cq q_first))

let test_certain_join_classic () =
  (* classic: R(1, x) certain-joins with itself only on agreeing x *)
  let schema2 =
    Schema.make
      [
        Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ];
        Schema.relation "S" [ Schema.attribute "b"; Schema.attribute "c" ];
      ]
  in
  let cdb =
    Cdatabase.make schema2
      [
        Ctable.make ~rel:"R" ~arity:2 [ Ctable.row [ Ctable.Const (Value.int 1); Ctable.Null "x" ] ];
        Ctable.make ~rel:"S" ~arity:2 [ Ctable.ground (Tuple.of_ints [ 5; 9 ]) ];
      ]
  in
  let join =
    Cq.make ~head:[ v "a"; v "c" ]
      [ Atom.make "R" [ v "a"; v "b" ]; Atom.make "S" [ v "b"; v "c" ] ]
  in
  (* certain: x might not be 5 → empty; possible: x = 5 world gives (1,9) *)
  let values = [ Value.int 5; Value.int 6 ] in
  Alcotest.(check bool) "certain join empty" true
    (Relation.is_empty (Cdatabase.certain_answers ~values cdb (Lang.Q_cq join)));
  Alcotest.check relation_testable "possible join" (Relation.of_int_rows [ [ 1; 9 ] ])
    (Cdatabase.possible_answers ~values cdb (Lang.Q_cq join))

let test_shared_nulls_rejected () =
  let schema2 =
    Schema.make
      [
        Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ];
        Schema.relation "S" [ Schema.attribute "b"; Schema.attribute "c" ];
      ]
  in
  let cdb =
    Cdatabase.make schema2
      [
        Ctable.make ~rel:"R" ~arity:2 [ Ctable.row [ Ctable.Null "x"; Ctable.Null "x" ] ];
        Ctable.make ~rel:"S" ~arity:2 [ Ctable.row [ Ctable.Null "x"; Ctable.Const (Value.int 1) ] ];
      ]
  in
  Alcotest.(check bool) "cross-table nulls rejected" true
    (try
       ignore (Cdatabase.worlds ~values:(vals 2) cdb);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Relative completeness with missing values *)

let master_schema = Schema.make [ Schema.relation "M" [ Schema.attribute "x" ] ]

let master ids =
  Database.of_list master_schema
    [ ("M", Relation.of_tuples (List.map (fun k -> Tuple.of_ints [ k ]) ids)) ]

let bound =
  Containment.make ~name:"bound"
    (Lang.Q_cq (Cq.make ~head:[ v "a" ] [ Atom.make "R" [ v "a"; v "b" ] ]))
    (Projection.proj "M" [ 0 ])

let q_all = Cq.make ~head:[ v "a" ] [ Atom.make "R" [ v "a"; v "b" ] ]

let test_strongly_complete () =
  (* both master entities present; only a non-key value is missing *)
  let cdb =
    Cdatabase.make schema
      [
        Ctable.make ~rel:"R" ~arity:2
          [
            Ctable.ground (Tuple.of_ints [ 1; 0 ]);
            Ctable.row [ Ctable.Const (Value.int 2); Ctable.Null "x" ];
          ];
      ]
  in
  let report =
    Rc_missing.analyze ~values:(vals 3) ~schema ~master:(master [ 1; 2 ])
      ~ccs:[ bound ] cdb (Lang.Q_cq q_all)
  in
  Alcotest.(check bool) "strongly complete" true report.Rc_missing.strongly_complete;
  (match Rc_missing.certain_answer_if_strong report (Lang.Q_cq q_all) with
   | Some answer ->
     Alcotest.check relation_testable "certain answer" (Relation.of_int_rows [ [ 1 ]; [ 2 ] ])
       answer
   | None -> Alcotest.fail "expected a certain answer")

let test_weakly_complete () =
  (* the missing value sits in the bounded column: only the world
     where it resolves to the missing master entity is complete *)
  let cdb =
    Cdatabase.make schema
      [
        Ctable.make ~rel:"R" ~arity:2
          [
            Ctable.ground (Tuple.of_ints [ 1; 0 ]);
            Ctable.row [ Ctable.Null "x"; Ctable.Const (Value.int 0) ];
          ];
      ]
  in
  let report =
    Rc_missing.analyze ~values:[ Value.int 1; Value.int 2 ] ~schema
      ~master:(master [ 1; 2 ]) ~ccs:[ bound ] cdb (Lang.Q_cq q_all)
  in
  Alcotest.(check bool) "not strongly complete" false report.Rc_missing.strongly_complete;
  Alcotest.(check bool) "weakly complete" true report.Rc_missing.weakly_complete;
  (* x = 1 world: answer {1}, but 2 missing → incomplete;
     x = 2 world: answer {1,2} → complete *)
  Alcotest.(check int) "exactly one complete world" 1 report.Rc_missing.n_complete

let test_never_complete () =
  (* with an out-of-master value possible, some worlds are not even
     partially closed *)
  let cdb =
    Cdatabase.make schema
      [ Ctable.make ~rel:"R" ~arity:2 [ Ctable.row [ Ctable.Null "x"; Ctable.Const (Value.int 0) ] ] ]
  in
  let report =
    Rc_missing.analyze ~values:[ Value.int 1; Value.int 9 ] ~schema
      ~master:(master [ 1; 2 ]) ~ccs:[ bound ] cdb (Lang.Q_cq q_all)
  in
  Alcotest.(check bool) "a world is not partially closed" true
    (report.Rc_missing.n_closed < report.Rc_missing.n_worlds);
  Alcotest.(check bool) "not weakly complete (2 always missing)" false
    report.Rc_missing.weakly_complete

let () =
  Alcotest.run "incomplete"
    [
      ( "ctables",
        [
          Alcotest.test_case "ground table" `Quick test_ground_table_single_world;
          Alcotest.test_case "null enumerates" `Quick test_null_enumerates;
          Alcotest.test_case "guards" `Quick test_guard_drops_row;
          Alcotest.test_case "global condition" `Quick test_global_condition_filters;
          Alcotest.test_case "shared nulls correlate" `Quick test_shared_null_correlates;
          Alcotest.test_case "world dedup" `Quick test_world_dedup;
        ] );
      ( "answers",
        [
          Alcotest.test_case "certain vs possible" `Quick test_certain_vs_possible;
          Alcotest.test_case "classic join" `Quick test_certain_join_classic;
          Alcotest.test_case "cross-table nulls rejected" `Quick test_shared_nulls_rejected;
        ] );
      ( "relative completeness (§5)",
        [
          Alcotest.test_case "strongly complete" `Quick test_strongly_complete;
          Alcotest.test_case "weakly complete" `Quick test_weakly_complete;
          Alcotest.test_case "never complete" `Quick test_never_complete;
        ] );
    ]
