(* Tests for the compiled match kernel and its satellites: value
   interning round-trips, Rix column buckets, O(1) relation
   cardinality/arity, Valuation.union conflict handling, the
   compiled-vs-naive solve differential (verdicts AND solution sets)
   over random bodies and databases, index-store reuse counters, and
   the compiled constraint checkers (Compiled.check and
   Incremental.check_add_overlay) differential against
   Containment.holds_all. *)

open Ric_relational
open Ric_query
open Ric_constraints
module Metrics = Ric_obs.Metrics

let v = Term.var

(* ------------------------------------------------------------------ *)
(* Intern *)

let test_intern_roundtrip () =
  let vals =
    [ Value.int 0; Value.int 42; Value.str ""; Value.str "a"; Value.str "42" ]
  in
  List.iter
    (fun x ->
      let id = Intern.id x in
      Alcotest.(check bool) "id is stable" true (Intern.id x = id);
      Alcotest.(check bool) "value round-trips" true
        (Value.equal (Intern.value id) x))
    vals;
  (* distinct values, distinct ids — including Int 42 vs Str "42" *)
  let ids = List.map Intern.id vals in
  Alcotest.(check int) "ids are distinct"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let t = Tuple.of_strs [ "a"; "b"; "a" ] in
  let row = Intern.row t in
  Alcotest.(check int) "row arity" 3 (Array.length row);
  Alcotest.(check bool) "row round-trips" true
    (Tuple.equal t (Tuple.make (Array.to_list (Array.map Intern.value row))));
  Alcotest.(check bool) "repeated values share ids" true (row.(0) = row.(2));
  Alcotest.(check bool) "size counts at least these" true
    (Intern.size () >= List.length vals)

(* ------------------------------------------------------------------ *)
(* Rix *)

let test_rix_buckets () =
  let r = Relation.of_str_rows [ [ "0"; "1" ]; [ "0"; "2" ]; [ "1"; "2" ] ] in
  let rx = Rix.build r in
  Alcotest.(check int) "cardinal" 3 (Rix.cardinal rx);
  Alcotest.(check int) "arity" 2 (Rix.arity rx);
  Alcotest.(check bool) "source is physical" true (Rix.source rx == r);
  let id s = Intern.id (Value.str s) in
  Alcotest.(check int) "col 0 bucket '0'" 2
    (List.length (Rix.bucket rx 0 (id "0")));
  Alcotest.(check int) "col 1 bucket '2'" 2
    (List.length (Rix.bucket rx 1 (id "2")));
  Alcotest.(check (list int)) "absent value" [] (Rix.bucket rx 0 (id "9"));
  Alcotest.(check (list int)) "column out of range" [] (Rix.bucket rx 7 (id "0"));
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "row %d aligns with tuple %d" i i)
        true
        (Tuple.equal (Rix.tuple rx i)
           (Tuple.make
              (Array.to_list (Array.map Intern.value (Rix.row rx i))))))
    [ 0; 1; 2 ];
  let empty = Rix.build Relation.empty in
  Alcotest.(check int) "empty cardinal" 0 (Rix.cardinal empty);
  Alcotest.(check int) "empty arity" (-1) (Rix.arity empty)

(* ------------------------------------------------------------------ *)
(* Relation satellites: O(1) cardinal must track every operation, and
   the stored arity must behave like the old TSet.choose_opt probe. *)

let rel_of rows = Relation.of_str_rows rows

let test_relation_cardinal () =
  let check_card what r =
    Alcotest.(check int) what (List.length (Relation.elements r))
      (Relation.cardinal r)
  in
  check_card "empty" Relation.empty;
  let r = rel_of [ [ "0"; "1" ]; [ "2"; "3" ] ] in
  check_card "of_str_rows" r;
  check_card "add new" (Relation.add (Tuple.of_strs [ "4"; "5" ]) r);
  let dup = Relation.add (Tuple.of_strs [ "0"; "1" ]) r in
  check_card "add duplicate" dup;
  Alcotest.(check int) "duplicate add keeps cardinal" 2 (Relation.cardinal dup);
  let s = rel_of [ [ "0"; "1" ]; [ "6"; "7" ] ] in
  check_card "union" (Relation.union r s);
  Alcotest.(check int) "union merges overlap" 3
    (Relation.cardinal (Relation.union r s));
  check_card "inter" (Relation.inter r s);
  check_card "diff" (Relation.diff r s);
  check_card "filter"
    (Relation.filter (fun t -> Tuple.get t 0 = Value.str "0") r);
  check_card "project" (Relation.project [ 0 ] (Relation.union r s))

let test_relation_arity () =
  Alcotest.(check bool) "empty arity" true (Relation.arity Relation.empty = None);
  let r = rel_of [ [ "0"; "1" ] ] in
  Alcotest.(check bool) "stored arity" true (Relation.arity r = Some 2);
  (match Relation.add (Tuple.of_strs [ "0" ]) r with
   | (_ : Relation.t) -> Alcotest.fail "arity mismatch must be rejected"
   | exception Invalid_argument _ -> ());
  match Relation.union r (rel_of [ [ "0" ] ]) with
  | (_ : Relation.t) -> Alcotest.fail "union arity mismatch must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Valuation.union: first conflict wins, agreement merges *)

let test_valuation_union () =
  let mk l =
    List.fold_left (fun m (x, c) -> Valuation.add x (Value.str c) m)
      Valuation.empty l
  in
  (match Valuation.union (mk [ ("x", "0"); ("y", "1") ]) (mk [ ("y", "2") ]) with
   | Some _ -> Alcotest.fail "conflicting bindings must not merge"
   | None -> ());
  match Valuation.union (mk [ ("x", "0"); ("y", "1") ]) (mk [ ("y", "1"); ("z", "2") ]) with
  | None -> Alcotest.fail "agreeing bindings must merge"
  | Some m ->
    Alcotest.(check int) "merged size" 3 (List.length (Valuation.bindings m))

(* ------------------------------------------------------------------ *)
(* Compiled vs naive solve: random conjunctive bodies, inequalities
   and databases; solution sets and early-stop verdicts must agree. *)

let sch =
  Schema.make
    [
      Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ];
      Schema.relation "S" [ Schema.attribute "a" ];
      Schema.relation "T"
        [ Schema.attribute "a"; Schema.attribute "b"; Schema.attribute "c" ];
    ]

let rel_specs = [| ("R", 2); ("S", 1); ("T", 3) |]

(* 0-3 → vars x y z w (w often stays out of the atoms, exercising the
   ignored never-ground-inequality rule); 4-6 → constants "0".."2" *)
let term_of_code k =
  if k < 4 then Term.var [| "x"; "y"; "z"; "w" |].(k)
  else Term.str (string_of_int (k - 4))

let atom_of (r, (c1, c2, c3)) =
  let name, ar = rel_specs.(r) in
  Atom.make name
    (List.filteri (fun i _ -> i < ar) [ c1; c2; c3 ] |> List.map term_of_code)

let db_of rows =
  List.fold_left
    (fun db (r, (a, b, c)) ->
      let name, ar = rel_specs.(r) in
      let vals =
        List.filteri (fun i _ -> i < ar) [ a; b; c ] |> List.map string_of_int
      in
      Database.add_tuple db name (Tuple.of_strs vals))
    (Database.empty sch) rows

let lookup_in db rel =
  try Database.relation db rel with Not_found -> Relation.empty

let solutions ~naive ~lookup ~neqs atoms =
  let out = ref [] in
  let (_ : bool) =
    Match_engine.solve ~lookup ~neqs ~naive atoms (fun mu ->
        out := Valuation.bindings mu :: !out;
        false)
  in
  List.sort compare !out

let gen_body =
  QCheck2.Gen.(
    triple
      (list_size (int_range 1 3)
         (pair (int_bound 2) (triple (int_bound 6) (int_bound 6) (int_bound 6))))
      (list_size (int_bound 2) (pair (int_bound 6) (int_bound 6)))
      (list_size (int_bound 10)
         (pair (int_bound 2) (triple (int_bound 2) (int_bound 2) (int_bound 2)))))

let solve_differential_prop (atom_specs, neq_specs, rows) =
  let atoms = List.map atom_of atom_specs in
  let neqs =
    List.map (fun (a, b) -> (term_of_code a, term_of_code b)) neq_specs
  in
  let db = db_of rows in
  let lookup = lookup_in db in
  let naive = solutions ~naive:true ~lookup ~neqs atoms in
  let compiled = solutions ~naive:false ~lookup ~neqs atoms in
  if naive <> compiled then
    QCheck2.Test.fail_reportf "solution sets diverge: naive %d vs compiled %d"
      (List.length naive) (List.length compiled);
  let exists naive =
    Match_engine.solve ~lookup ~neqs ~naive atoms (fun _ -> true)
  in
  if exists true <> exists false then
    QCheck2.Test.fail_report "early-stop verdicts diverge";
  true

let test_solve_differential =
  QCheck2.Test.make ~name:"compiled solve ≡ naive solve (sets and verdicts)"
    ~count:500 gen_body solve_differential_prop

(* initial valuations: bindings for body variables prune, bindings for
   foreign variables ride through to every reported solution *)
let test_solve_init () =
  let db =
    db_of [ (0, (0, 1, 0)); (0, (1, 2, 0)); (1, (1, 0, 0)); (1, (2, 0, 0)) ]
  in
  let lookup = lookup_in db in
  let atoms = [ Atom.make "R" [ v "x"; v "y" ]; Atom.make "S" [ v "y" ] ] in
  let init =
    Valuation.add "x" (Value.str "0")
      (Valuation.add "alien" (Value.str "elsewhere") Valuation.empty)
  in
  let run naive =
    let out = ref [] in
    let (_ : bool) =
      Match_engine.solve ~lookup ~init ~naive atoms (fun mu ->
          out := Valuation.bindings mu :: !out;
          false)
    in
    List.sort compare !out
  in
  let compiled = run false in
  Alcotest.(check bool) "init agrees with naive" true (run true = compiled);
  Alcotest.(check int) "x=0 leaves one solution" 1 (List.length compiled);
  List.iter
    (fun sol ->
      Alcotest.(check bool) "foreign binding rides through" true
        (List.mem_assoc "alien" sol))
    compiled

(* ------------------------------------------------------------------ *)
(* Store reuse: same physical relation → cached index (reuse counter),
   changed relation → rebuild (build counter) *)

let test_store_reuse () =
  let builds = Metrics.counter "ric_match_index_builds_total" in
  let reuses = Metrics.counter "ric_match_index_reuses_total" in
  let db = db_of [ (0, (0, 1, 0)); (0, (1, 2, 0)) ] in
  let atoms = [ Atom.make "R" [ v "x"; v "y" ] ] in
  let store = Kernel.Store.create () in
  let solve db =
    ignore
      (Match_engine.solve ~lookup:(lookup_in db) ~store atoms (fun _ -> false))
  in
  let b0 = Metrics.counter_value builds in
  solve db;
  let b1 = Metrics.counter_value builds in
  Alcotest.(check bool) "first solve builds" true (b1 > b0);
  let r0 = Metrics.counter_value reuses in
  solve db;
  Alcotest.(check int) "second solve rebuilds nothing" b1
    (Metrics.counter_value builds);
  Alcotest.(check bool) "second solve reuses" true
    (Metrics.counter_value reuses > r0);
  (* growing the relation invalidates the cache entry by identity *)
  solve (Database.add_tuple db "R" (Tuple.of_strs [ "2"; "2" ]));
  Alcotest.(check bool) "changed relation rebuilds" true
    (Metrics.counter_value builds > b1)

(* ------------------------------------------------------------------ *)
(* Compiled constraint checker: differential against holds_all over
   random base/delta splits (no parent invariant required). *)

let cc_master =
  Database.of_list
    (Schema.make
       [
         Schema.relation "M" [ Schema.attribute "a"; Schema.attribute "b" ];
         Schema.relation "N" [ Schema.attribute "a" ];
       ])
    [
      ( "M",
        Relation.of_str_rows
          [ [ "0"; "0" ]; [ "0"; "1" ]; [ "1"; "2" ]; [ "2"; "2" ] ] );
      ("N", Relation.of_str_rows [ [ "0" ]; [ "1" ] ]);
    ]

let ccs =
  [
    Containment.make ~name:"rm"
      (Lang.Q_cq
         (Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "R" [ v "x"; v "y" ] ]))
      (Projection.proj "M" [ 0; 1 ]);
    Containment.make ~name:"join"
      (Lang.Q_cq
         (Cq.make ~head:[ v "y" ]
            [ Atom.make "R" [ v "x"; v "y" ]; Atom.make "S" [ v "y" ] ]))
      (Projection.proj "N" [ 0 ]);
    Containment.make ~name:"neq"
      (Lang.Q_cq
         (Cq.make
            ~neqs:[ (v "x", v "y") ]
            ~head:[ v "x" ]
            [ Atom.make "R" [ v "x"; v "x" ]; Atom.make "S" [ v "y" ] ]))
      Projection.Empty;
    Containment.make ~name:"const"
      (Lang.Q_cq
         (Cq.make ~head:[ v "x" ]
            [ Atom.make "S" [ v "x" ]; Atom.make "S" [ Term.str "3" ] ]))
      Projection.Empty;
  ]

let gen_split =
  QCheck2.Gen.(
    list_size (int_bound 12)
      (triple bool (int_bound 1)
         (triple (int_bound 3) (int_bound 3) (int_bound 3))))

let compiled_check_prop picks =
  let base_rows, delta_rows =
    List.partition_map
      (fun (to_base, r, vals) ->
        if to_base then Either.Left (r, vals) else Either.Right (r, vals))
      picks
  in
  let base = db_of base_rows and delta = db_of delta_rows in
  let db = Database.union base delta in
  let comp = Compiled.create ~base ~master:cc_master ccs in
  let fast = Compiled.check comp ~db ~delta in
  let slow = Containment.holds_all ~db ~master:cc_master ccs in
  if fast <> slow then
    QCheck2.Test.fail_reportf "Compiled.check %b vs holds_all %b" fast slow;
  true

let test_compiled_differential =
  QCheck2.Test.make
    ~name:"Compiled.check ≡ holds_all over random base/delta splits" ~count:300
    gen_split compiled_check_prop

(* unsafe LHS: the compiled checker must keep the evaluator's error *)
let test_compiled_unsafe_fallback () =
  let cc =
    Containment.make ~name:"unsafe"
      (Lang.Q_cq (Cq.make ~head:[ v "q" ] [ Atom.make "S" [ v "x" ] ]))
      (Projection.proj "N" [ 0 ])
  in
  let db = db_of [ (1, (0, 0, 0)) ] in
  let comp = Compiled.create ~base:(Database.empty sch) ~master:cc_master [ cc ] in
  let expect_invalid what f =
    match f () with
    | (_ : bool) -> Alcotest.failf "%s must reject the unsafe query" what
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "holds_all" (fun () ->
      Containment.holds_all ~db ~master:cc_master [ cc ]);
  expect_invalid "Compiled.check" (fun () ->
      Compiled.check comp ~db ~delta:db)

(* ------------------------------------------------------------------ *)
(* Incremental overlay: both base/delta decompositions used by the
   search must agree with the plain check and with holds_all along
   accepted growth chains (the checker's parent invariant). *)

let overlay_chain_prop adds =
  let inc = Incremental.create ~schema:sch ~master:cc_master ccs in
  if not (Incremental.empty_ok inc) then
    QCheck2.Test.fail_report "empty database must satisfy the test constraints";
  let empty_db = Database.empty sch in
  let db = ref empty_db in
  List.iter
    (fun (pick, a, b) ->
      let rel, tuple =
        if pick land 1 = 0 then
          ("R", Tuple.of_strs [ string_of_int a; string_of_int b ])
        else ("S", Tuple.of_strs [ string_of_int a ])
      in
      let grown = Database.add_tuple !db rel tuple in
      let singleton = Database.add_tuple empty_db rel tuple in
      let slow = Containment.holds_all ~db:grown ~master:cc_master ccs in
      let plain = Incremental.check_add inc ~db:grown ~rel ~tuple in
      (* delta-only decomposition: everything is overlay *)
      let delta_only =
        Incremental.check_add_overlay inc ~base:empty_db ~delta:grown ~db:grown
          ~rel ~tuple
      in
      (* against-base decomposition: parent fixed, new tuple as delta *)
      let split =
        Incremental.check_add_overlay inc ~base:!db ~delta:singleton ~db:grown
          ~rel ~tuple
      in
      if plain <> slow || delta_only <> slow || split <> slow then
        QCheck2.Test.fail_reportf
          "%s: holds_all %b, check_add %b, overlay(delta) %b, overlay(split) %b"
          rel slow plain delta_only split;
      if slow then db := grown)
    adds;
  true

let test_overlay_differential =
  QCheck2.Test.make
    ~name:"check_add_overlay ≡ check_add ≡ holds_all on growth chains"
    ~count:300
    QCheck2.Gen.(
      list_size (int_bound 12)
        (triple (int_bound 7) (int_bound 3) (int_bound 3)))
    overlay_chain_prop

(* Satellite regression: the already-interned fast path takes zero
   locks.  The first [row] on fresh values may intern (locking at most
   once for the whole row); every later [id]/[row] over the same values
   must leave the acquisition counter untouched — that counter is what
   the bench reports per million search steps. *)
let test_intern_lock_free_fast_path () =
  let t = Tuple.of_strs [ "lockfree-a"; "lockfree-b"; "lockfree-a" ] in
  let first = Intern.row t in
  let before = Intern.lock_acquisitions () in
  for _ = 1 to 1_000 do
    let again = Intern.row t in
    assert (again = first);
    ignore (Intern.id (Value.str "lockfree-b"))
  done;
  Alcotest.(check int) "fully interned row/id take zero locks" before
    (Intern.lock_acquisitions ());
  (* a genuinely new value still interns correctly — and pays *)
  ignore (Intern.id (Value.str "lockfree-fresh"));
  Alcotest.(check bool) "true interning is counted" true
    (Intern.lock_acquisitions () > before)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kernel"
    [
      ( "intern",
        [
          Alcotest.test_case "round-trip" `Quick test_intern_roundtrip;
          Alcotest.test_case "lock-free fast path" `Quick
            test_intern_lock_free_fast_path;
        ] );
      ("rix", [ Alcotest.test_case "buckets" `Quick test_rix_buckets ]);
      ( "relation",
        [
          Alcotest.test_case "cardinal is exact" `Quick test_relation_cardinal;
          Alcotest.test_case "stored arity" `Quick test_relation_arity;
        ] );
      ( "valuation",
        [ Alcotest.test_case "union conflicts" `Quick test_valuation_union ] );
      ( "solve",
        [
          QCheck_alcotest.to_alcotest test_solve_differential;
          Alcotest.test_case "initial valuations" `Quick test_solve_init;
        ] );
      ("store", [ Alcotest.test_case "index reuse" `Quick test_store_reuse ]);
      ( "compiled",
        [
          QCheck_alcotest.to_alcotest test_compiled_differential;
          Alcotest.test_case "unsafe fallback" `Quick
            test_compiled_unsafe_fallback;
        ] );
      ( "incremental overlay",
        [ QCheck_alcotest.to_alcotest test_overlay_differential ] );
    ]
