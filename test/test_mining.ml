(* Tests for the constraint-mining subsystem: canonicalisation,
   kernel-vs-naive scoring agreement, the accept/cover pipeline, its
   budget and parallel behaviour, the .ric round trip of mined blocks,
   the RCDP cross-check, the plan-memo eviction counter, and the ricd
   [mine] op (protocol + service, caching and insert invalidation).

   The QCheck differential is the load-bearing one: on random (Dm, D)
   pairs every accepted constraint must actually hold (the naive
   [Containment.holds_all] is the oracle), and with the minimal cover
   disabled the accepted set must equal the brute-force enumerate +
   naive-score acceptance — the compiled kernel path earns no slack. *)

open Ric_relational
open Ric_query
open Ric_constraints
module Enumerate = Ric_mining.Enumerate
module Score = Ric_mining.Score
module Mine = Ric_mining.Mine
module Scenario = Ric_text.Scenario
module Budget = Ric_complete.Budget
module Json = Ric_text.Json

let v x = Term.Var x

(* The paper's running example, inline (tests run from _build). *)
let crm_source =
  {|
  schema Supt(eid, dept, cid).
  schema Cust(cid, name, cc, ac, phn).
  master DCust(cid, name, ac, phn).
  rows DCust {
    (c0, alice, 908, p0)
    (c1, bob,   212, p1)
    (c2, carol, 908, p2)
  }.
  rows Cust {
    (c0, alice, "01", 908, p0)
    (c1, bob,   "01", 212, p1)
  }.
  rows Supt {
    (e0, d0, c0)
    (e0, d0, c1)
  }.
  query Q2(c) :- Supt("e0", d, c).
  query Q0(c, n) :- Cust(c, n, "01", 908, p).
|}

let crm () = Scenario.parse crm_source

let mine ?config ?budget (s : Scenario.t) =
  Mine.run ?config ?budget ~db_schema:s.Scenario.db_schema
    ~master_schema:s.Scenario.master_schema ~db:s.Scenario.db
    ~master:s.Scenario.master ()

(* ------------------------------------------------------------------ *)
(* Canonicalisation *)

let test_canonical_key_alpha () =
  let k1 =
    Enumerate.canonical_key ~head:[ v "a" ]
      ~atoms:[ Atom.make "R" [ v "a"; v "b" ] ]
      ~neqs:[] ~rhs:(Projection.proj "M" [ 0 ])
  in
  let k2 =
    Enumerate.canonical_key ~head:[ v "x" ]
      ~atoms:[ Atom.make "R" [ v "x"; v "y" ] ]
      ~neqs:[] ~rhs:(Projection.proj "M" [ 0 ])
  in
  Alcotest.(check string) "alpha-equivalent bodies collide" k1 k2;
  let k3 =
    Enumerate.canonical_key ~head:[ v "x" ]
      ~atoms:[ Atom.make "R" [ v "y"; v "x" ] ]
      ~neqs:[] ~rhs:(Projection.proj "M" [ 0 ])
  in
  Alcotest.(check bool) "column swap is distinct" false (k1 = k3)

let test_canonical_key_atom_order () =
  let a1 = Atom.make "R" [ v "x"; v "y" ] in
  let a2 = Atom.make "S" [ v "y"; v "z" ] in
  let k12 =
    Enumerate.canonical_key ~head:[ v "x" ] ~atoms:[ a1; a2 ] ~neqs:[]
      ~rhs:(Projection.proj "M" [ 0 ])
  in
  let k21 =
    Enumerate.canonical_key ~head:[ v "a" ]
      ~atoms:[ Atom.make "S" [ v "b"; v "c" ]; Atom.make "R" [ v "a"; v "b" ] ]
      ~neqs:[]
      ~rhs:(Projection.proj "M" [ 0 ])
  in
  Alcotest.(check string) "atom order is normalised away" k12 k21

let test_enumerate_dedup () =
  let s = crm () in
  let r =
    Enumerate.generate ~db_schema:s.Scenario.db_schema
      ~master_schema:s.Scenario.master_schema ~db:s.Scenario.db ()
  in
  let keys = List.map (fun c -> c.Enumerate.key) r.Enumerate.cands in
  let uniq = List.sort_uniq compare keys in
  Alcotest.(check int) "no duplicate canonical keys" (List.length keys)
    (List.length uniq);
  Alcotest.(check int) "enumerated = kept + duplicates" r.Enumerate.enumerated
    (List.length keys + r.Enumerate.duplicates);
  Alcotest.(check bool) "connected join bodies only" true
    (List.for_all
       (fun c ->
         match c.Enumerate.atoms with
         | [ _ ] | [] -> true
         | atoms ->
           (* every atom shares a variable with some other atom *)
           List.for_all
             (fun a ->
               List.exists
                 (fun b ->
                   a != b
                   && List.exists
                        (fun x -> List.mem x (Atom.vars b))
                        (Atom.vars a))
                 atoms)
             atoms)
       r.Enumerate.cands)

(* ------------------------------------------------------------------ *)
(* Kernel scoring vs the naive reference *)

let test_score_matches_naive () =
  let s = crm () in
  let r =
    Enumerate.generate
      ~config:{ Enumerate.default with Enumerate.max_atoms = 2 }
      ~db_schema:s.Scenario.db_schema ~master_schema:s.Scenario.master_schema
      ~db:s.Scenario.db ()
  in
  let ctx = Score.ctx ~master:s.Scenario.master () in
  List.iter
    (fun c ->
      let k = Score.score ctx ~db:s.Scenario.db c in
      let n = Score.naive_score ~db:s.Scenario.db ~master:s.Scenario.master c in
      if k.Score.support <> n.Score.support then
        Alcotest.failf "support mismatch on %s: kernel %d, naive %d"
          c.Enumerate.key k.Score.support n.Score.support;
      if abs_float (k.Score.confidence -. n.Score.confidence) > 1e-9 then
        Alcotest.failf "confidence mismatch on %s: kernel %f, naive %f"
          c.Enumerate.key k.Score.confidence n.Score.confidence)
    r.Enumerate.cands

(* ------------------------------------------------------------------ *)
(* The mining pipeline on the crm scenario *)

let test_mine_crm_accepts () =
  let s = crm () in
  let r = mine s in
  Alcotest.(check bool) "accepts constraints" true (r.Mine.accepted <> []);
  Alcotest.(check int) "stats.accepted agrees" r.Mine.stats.Mine.accepted
    (List.length r.Mine.accepted);
  Alcotest.(check int) "scored list is parallel" (List.length r.Mine.accepted)
    (List.length r.Mine.accepted_scored);
  Alcotest.(check bool) "no timeout" true (r.Mine.timed_out = None);
  (* every accepted constraint holds on the pair it was mined from *)
  Alcotest.(check bool) "accepted constraints hold" true
    (Containment.holds_all ~db:s.Scenario.db ~master:s.Scenario.master
       (List.map snd r.Mine.accepted));
  (* acceptance is confidence-1.0 only *)
  Alcotest.(check bool) "confidence 1.0 only" true
    (List.for_all (fun sc -> sc.Score.confidence = 1.0) r.Mine.accepted_scored)

let test_minimal_cover_drops_implied () =
  let s = crm () in
  let full = mine ~config:{ Mine.default with Mine.minimal_cover = false } s in
  let covered = mine s in
  Alcotest.(check bool) "cover is smaller" true
    (List.length covered.Mine.accepted < List.length full.Mine.accepted);
  (* the cover is a subset of the full set, by canonical key *)
  let keys r =
    List.map (fun sc -> sc.Score.candidate.Enumerate.key) r.Mine.accepted_scored
  in
  let full_keys = keys full in
  Alcotest.(check bool) "cover ⊆ full" true
    (List.for_all (fun k -> List.mem k full_keys) (keys covered));
  (* a constant-refined inclusion must not survive next to its
     generalisation (the regression the pairwise cover fixes) *)
  let has_constant_inclusion =
    List.exists
      (fun sc ->
        let c = sc.Score.candidate in
        c.Enumerate.family = "inclusion"
        && c.Enumerate.rhs <> Projection.Empty
        && List.exists (fun a -> Atom.constants a <> []) c.Enumerate.atoms)
      covered.Mine.accepted_scored
  in
  Alcotest.(check bool) "constant-refined inclusions are covered" false
    has_constant_inclusion

let test_mine_empty_instance () =
  let s = crm () in
  let empty = Database.empty s.Scenario.db_schema in
  let r = mine { s with Scenario.db = empty } in
  Alcotest.(check int) "nothing accepted" 0 (List.length r.Mine.accepted);
  Alcotest.(check bool) "no timeout" true (r.Mine.timed_out = None)

let test_mine_timeout_partial () =
  let s = crm () in
  let budget = Budget.create ~max_steps:40 () in
  let r = mine ~budget s in
  (match r.Mine.timed_out with
   | Some _ -> ()
   | None -> Alcotest.fail "a 40-step budget must exhaust on crm");
  (* partial results still hold *)
  Alcotest.(check bool) "partial accepted still hold" true
    (Containment.holds_all ~db:s.Scenario.db ~master:s.Scenario.master
       (List.map snd r.Mine.accepted))

let test_mine_seq_par_agree () =
  let s = crm () in
  let keys r =
    List.map (fun sc -> sc.Score.candidate.Enumerate.key) r.Mine.accepted_scored
  in
  let seq = mine ~config:{ Mine.default with Mine.workers = 1 } s in
  let par = mine ~config:{ Mine.default with Mine.workers = 2 } s in
  Alcotest.(check (list string)) "same accepted set" (keys seq) (keys par)

(* ------------------------------------------------------------------ *)
(* Round trip: mined block → pp → parse → pp *)

let test_roundtrip_through_parser () =
  let s = crm () in
  let r = mine s in
  let s' = Scenario.with_ccs s r.Mine.accepted in
  let printed = Format.asprintf "%a" Scenario.pp s' in
  let reparsed = Scenario.parse printed in
  Alcotest.(check int) "constraint count survives"
    (List.length r.Mine.accepted)
    (List.length reparsed.Scenario.ccs);
  let printed_again = Format.asprintf "%a" Scenario.pp reparsed in
  Alcotest.(check string) "pp ∘ parse ∘ pp is stable" printed printed_again

(* ------------------------------------------------------------------ *)
(* Cross-check: mined V flips crm's Q2 to Complete *)

let test_cross_check_flips () =
  let s = crm () in
  let r = mine s in
  let rows =
    Mine.cross_check ~db_schema:s.Scenario.db_schema ~db:s.Scenario.db
      ~master:s.Scenario.master ~queries:s.Scenario.queries
      ~mined:r.Mine.accepted ()
  in
  Alcotest.(check int) "one row per query" (List.length s.Scenario.queries)
    (List.length rows);
  let q2 = List.find (fun c -> c.Mine.cq_name = "Q2") rows in
  Alcotest.(check string) "Q2 incomplete under empty V" "Incomplete"
    q2.Mine.before;
  Alcotest.(check string) "Q2 complete under mined V" "Complete" q2.Mine.after;
  Alcotest.(check bool) "Q2 flipped" true q2.Mine.flipped

(* ------------------------------------------------------------------ *)
(* QCheck differential on random (Dm, D) pairs *)

let qcheck_config =
  {
    Mine.default with
    Mine.enum =
      {
        Enumerate.max_atoms = 2;
        max_width = 2;
        max_consts = 2;
        closure_max = 2;
        cap_max = 1;
      };
    minimal_cover = false;
  }

let rand_schema =
  Schema.make
    [
      Schema.relation "S" [ Schema.attribute "a"; Schema.attribute "b" ];
      Schema.relation "T" [ Schema.attribute "a" ];
    ]

let rand_master_schema =
  Schema.make
    [
      Schema.relation "M" [ Schema.attribute "a"; Schema.attribute "b" ];
      Schema.relation "N" [ Schema.attribute "a" ];
    ]

let rand_pair_gen =
  QCheck2.Gen.(
    let rows2 = list_size (int_bound 4) (pair (int_bound 2) (int_bound 2)) in
    let rows1 = list_size (int_bound 3) (int_bound 2) in
    quad rows2 rows1 rows2 rows1)

let db_of (s_rows, t_rows, m_rows, n_rows) =
  let db =
    Database.of_list rand_schema
      [
        ("S", Relation.of_int_rows (List.map (fun (a, b) -> [ a; b ]) s_rows));
        ("T", Relation.of_int_rows (List.map (fun a -> [ a ]) t_rows));
      ]
  in
  let master =
    Database.of_list rand_master_schema
      [
        ("M", Relation.of_int_rows (List.map (fun (a, b) -> [ a; b ]) m_rows));
        ("N", Relation.of_int_rows (List.map (fun a -> [ a ]) n_rows));
      ]
  in
  (db, master)

let prop_accepted_hold =
  QCheck2.Test.make ~name:"every accepted constraint holds (naive oracle)"
    ~count:60 rand_pair_gen (fun rows ->
      let db, master = db_of rows in
      let r =
        Mine.run ~config:qcheck_config ~db_schema:rand_schema
          ~master_schema:rand_master_schema ~db ~master ()
      in
      Containment.holds_all ~db ~master (List.map snd r.Mine.accepted))

let prop_accepted_equals_bruteforce =
  QCheck2.Test.make
    ~name:"accepted set equals brute-force enumerate + naive accept" ~count:60
    rand_pair_gen (fun rows ->
      let db, master = db_of rows in
      let r =
        Mine.run ~config:qcheck_config ~db_schema:rand_schema
          ~master_schema:rand_master_schema ~db ~master ()
      in
      let mined_keys =
        List.sort compare
          (List.map
             (fun sc -> sc.Score.candidate.Enumerate.key)
             r.Mine.accepted_scored)
      in
      let enum =
        Enumerate.generate ~config:qcheck_config.Mine.enum
          ~db_schema:rand_schema ~master_schema:rand_master_schema ~db ()
      in
      let brute_keys =
        List.sort compare
          (List.filter_map
             (fun c ->
               let n = Score.naive_score ~db ~master c in
               if n.Score.support >= 1 && n.Score.confidence >= 1.0 then
                 Some c.Enumerate.key
               else None)
             enum.Enumerate.cands)
      in
      mined_keys = brute_keys)

(* ------------------------------------------------------------------ *)
(* Kernel plan-memo eviction counter *)

let test_memo_eviction_counter () =
  let c = Ric_obs.Metrics.counter "ric_kernel_memo_evictions_total" in
  let before = Ric_obs.Metrics.counter_value c in
  (* more distinct bodies than the 256-entry memo holds *)
  for i = 0 to 299 do
    ignore
      (Kernel.plan_for [ Atom.make ("Mem" ^ string_of_int i) [ v "x" ] ] [])
  done;
  let after = Ric_obs.Metrics.counter_value c in
  Alcotest.(check bool)
    (Printf.sprintf "eviction counter moved (%d -> %d)" before after)
    true (after > before)

(* ------------------------------------------------------------------ *)
(* Protocol + service: the ricd mine op *)

let obj_field k = function Json.Obj fs -> List.assoc_opt k fs | _ -> None

let get k j =
  match obj_field k j with
  | Some x -> x
  | None -> Alcotest.failf "no field %S in %s" k (Json.to_string j)

let get_bool k j =
  match get k j with
  | Json.Bool b -> b
  | _ -> Alcotest.failf "field %S is not a bool" k

let get_int k j =
  match get k j with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %S is not an int" k

let get_list k j =
  match get k j with
  | Json.List l -> l
  | _ -> Alcotest.failf "field %S is not a list" k

let test_protocol_mine_roundtrip () =
  let open Ric_service in
  List.iter
    (fun req ->
      match Protocol.of_json (Protocol.to_json req) with
      | Ok req' ->
        Alcotest.(check bool) "mine round trips" true (req = req')
      | Error m -> Alcotest.failf "mine failed to decode: %s" m)
    [
      Protocol.Mine
        {
          session = "s1";
          nocache = false;
          timeout_ms = None;
          min_support = None;
          workers = None;
        };
      Protocol.Mine
        {
          session = "s1";
          nocache = true;
          timeout_ms = Some 250;
          min_support = Some 2;
          workers = Some 4;
        };
    ]

let test_service_mine () =
  let open Ric_service in
  let service = Service.create () in
  let opened =
    Service.handle service
      (Protocol.Open { path = None; source = Some crm_source; name = Some "crm" })
  in
  Alcotest.(check bool) "open ok" true (get_bool "ok" opened);
  let sid =
    match get "session" opened with
    | Json.Str s -> s
    | _ -> Alcotest.fail "no session id"
  in
  let mine_req ?(nocache = false) () =
    Protocol.Mine
      { session = sid; nocache; timeout_ms = None; min_support = None; workers = None }
  in
  let first = Service.handle service (mine_req ()) in
  Alcotest.(check bool) "mine ok" true (get_bool "ok" first);
  Alcotest.(check bool) "fresh is uncached" false (get_bool "cached" first);
  let accepted = get_list "accepted" (get "result" first) in
  Alcotest.(check bool) "accepts constraints" true (accepted <> []);
  (* every emitted text line parses back as a scenario constraint *)
  let block =
    String.concat "\n"
      (List.map
         (fun c ->
           match get "text" c with
           | Json.Str s -> s
           | _ -> Alcotest.fail "constraint text missing")
         accepted)
  in
  let reparsed =
    Scenario.parse
      ({|
       schema Supt(eid, dept, cid).
       schema Cust(cid, name, cc, ac, phn).
       master DCust(cid, name, ar, phn).
      |}
      ^ block)
  in
  Alcotest.(check int) "wire block reparses" (List.length accepted)
    (List.length reparsed.Scenario.ccs);
  let second = Service.handle service (mine_req ()) in
  Alcotest.(check bool) "replay is cached" true (get_bool "cached" second);
  (* nocache bypasses without disturbing the stored entry *)
  let bypass = Service.handle service (mine_req ~nocache:true ()) in
  Alcotest.(check bool) "nocache bypasses" false (get_bool "cached" bypass);
  (* an insert moves the epoch and invalidates the mined set *)
  let ins =
    Service.handle service
      (Protocol.Insert
         {
           session = sid;
           rel = "Supt";
           rows = [ [ Value.Str "e1"; Value.Str "d1"; Value.Str "c2" ] ];
         })
  in
  Alcotest.(check bool) "insert ok" true (get_bool "ok" ins);
  let third = Service.handle service (mine_req ()) in
  Alcotest.(check bool) "post-insert is uncached" false (get_bool "cached" third);
  Alcotest.(check int) "post-insert epoch" 1 (get_int "epoch" third)

(* ------------------------------------------------------------------ *)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_accepted_hold; prop_accepted_equals_bruteforce ]

let () =
  Alcotest.run "mining"
    [
      ( "enumerate",
        [
          Alcotest.test_case "alpha-equivalence" `Quick test_canonical_key_alpha;
          Alcotest.test_case "atom order" `Quick test_canonical_key_atom_order;
          Alcotest.test_case "dedup + connectedness" `Quick test_enumerate_dedup;
        ] );
      ( "score",
        [ Alcotest.test_case "kernel = naive" `Quick test_score_matches_naive ] );
      ( "mine",
        [
          Alcotest.test_case "crm accepts" `Quick test_mine_crm_accepts;
          Alcotest.test_case "minimal cover" `Quick test_minimal_cover_drops_implied;
          Alcotest.test_case "empty instance" `Quick test_mine_empty_instance;
          Alcotest.test_case "budget timeout" `Quick test_mine_timeout_partial;
          Alcotest.test_case "seq = par" `Quick test_mine_seq_par_agree;
          Alcotest.test_case "round trip" `Quick test_roundtrip_through_parser;
          Alcotest.test_case "cross-check flip" `Quick test_cross_check_flips;
        ] );
      ( "observability",
        [ Alcotest.test_case "memo evictions" `Quick test_memo_eviction_counter ] );
      ( "service",
        [
          Alcotest.test_case "protocol round trip" `Quick test_protocol_mine_roundtrip;
          Alcotest.test_case "mine op lifecycle" `Quick test_service_mine;
        ] );
      ("properties", properties);
    ]
