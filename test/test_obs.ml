(* Tests for the ric_obs telemetry layer: histogram bucket boundaries,
   concurrent counter increments from two domains, the Prometheus text
   exposition, the trace JSONL round-trip through the project's own
   JSON parser plus the offline summarizer, and the guarantee that
   turning tracing on changes no verdict on any scenario file. *)

open Ric_obs
module Scenario = Ric_text.Scenario
module Trace_summary = Ric_text.Trace_summary
open Ric_complete

(* The registry is process-global and never resets, so every test
   registers uniquely-named metrics and asserts on deltas. *)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_basics () =
  let c = Metrics.counter ~help:"test" "ric_test_counter_basics_total" in
  let v0 = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" (v0 + 42) (Metrics.counter_value c);
  let again = Metrics.counter ~help:"test" "ric_test_counter_basics_total" in
  Metrics.incr again;
  Alcotest.(check int) "re-registration returns the same counter" (v0 + 43)
    (Metrics.counter_value c);
  (match Metrics.gauge "ric_test_counter_basics_total" with
   | (_ : Metrics.gauge) -> Alcotest.fail "kind clash must be rejected"
   | exception Invalid_argument _ -> ());
  match Metrics.counter "not a metric name" with
  | (_ : Metrics.counter) -> Alcotest.fail "malformed name must be rejected"
  | exception Invalid_argument _ -> ()

let test_labels_distinguish () =
  let a = Metrics.counter ~labels:[ ("op", "a") ] "ric_test_labeled_total" in
  let b = Metrics.counter ~labels:[ ("op", "b") ] "ric_test_labeled_total" in
  Metrics.incr a;
  Alcotest.(check int) "labels separate series" 0 (Metrics.counter_value b);
  (* label order must not matter for identity *)
  let a' =
    Metrics.counter
      ~labels:[ ("x", "1"); ("op", "a") ]
      "ric_test_label_order_total"
  and a'' =
    Metrics.counter
      ~labels:[ ("op", "a"); ("x", "1") ]
      "ric_test_label_order_total"
  in
  Metrics.incr a';
  Alcotest.(check int) "sorted label identity" 1 (Metrics.counter_value a'')

let test_histogram_buckets () =
  let bounds = Metrics.bucket_bounds in
  Alcotest.(check int) "13 finite buckets" 13 (Array.length bounds);
  Alcotest.(check (float 1e-12)) "first bound is 1µs" 1e-6 bounds.(0);
  Array.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "bound %d is 4x bound %d" i (i - 1))
          (4. *. bounds.(i - 1))
          b)
    bounds;
  let h = Metrics.histogram ~help:"test" "ric_test_hist_seconds" in
  (* one observation exactly on a bound (inclusive: le), one inside a
     bucket, one beyond every bound, and a garbage value *)
  Metrics.observe h 1e-6;
  Metrics.observe h 5e-6;
  (* (4µs, 16µs] *)
  Metrics.observe h 1e9;
  Metrics.observe h Float.nan;
  (* clamped to 0, lands in the first bucket *)
  let snap =
    match
      List.find_opt
        (fun s -> s.Metrics.name = "ric_test_hist_seconds")
        (Metrics.snapshot ())
    with
    | Some { Metrics.value = Metrics.Histogram snap; _ } -> snap
    | _ -> Alcotest.fail "histogram missing from snapshot"
  in
  Alcotest.(check int) "count" 4 snap.Metrics.count;
  (* the +Inf bucket is cumulative like the rest: it equals the count *)
  Alcotest.(check int) "+Inf is cumulative" 4 snap.Metrics.inf_count;
  let cumulative_at bound =
    match
      Array.find_opt (fun (b, _) -> b = bound) snap.Metrics.buckets
    with
    | Some (_, n) -> n
    | None -> Alcotest.failf "no bucket with bound %g" bound
  in
  (* le semantics: the 1µs observation (and the clamped NaN) sit in the
     first bucket, cumulative counts grow from there *)
  Alcotest.(check int) "le 1µs" 2 (cumulative_at bounds.(0));
  Alcotest.(check int) "le 4µs" 2 (cumulative_at bounds.(1));
  Alcotest.(check int) "le 16µs" 3 (cumulative_at bounds.(2));
  let top = cumulative_at bounds.(Array.length bounds - 1) in
  Alcotest.(check int) "le top bound" 3 top;
  Alcotest.(check int) "one observation overflowed every finite bucket" 1
    (snap.Metrics.count - top);
  Alcotest.(check bool) "sum includes the large outlier" true
    (snap.Metrics.sum >= 1e9)

let test_concurrent_increments () =
  let c = Metrics.counter "ric_test_concurrent_total" in
  let h = Metrics.histogram "ric_test_concurrent_seconds" in
  let per_domain = 50_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done;
    for _ = 1 to 1000 do
      Metrics.observe h 1e-5
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost counter increments" (2 * per_domain)
    (Metrics.counter_value c);
  match
    List.find_opt
      (fun s -> s.Metrics.name = "ric_test_concurrent_seconds")
      (Metrics.snapshot ())
  with
  | Some { Metrics.value = Metrics.Histogram snap; _ } ->
    Alcotest.(check int) "no lost observations" 2000 snap.Metrics.count
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_gauge_fn () =
  let v = ref 7 in
  Metrics.gauge_fn ~help:"test" "ric_test_pull_gauge" (fun () -> !v);
  let find () =
    match
      List.find_opt
        (fun s -> s.Metrics.name = "ric_test_pull_gauge")
        (Metrics.snapshot ())
    with
    | Some { Metrics.value = Metrics.Gauge g; _ } -> g
    | _ -> Alcotest.fail "pull gauge missing from snapshot"
  in
  Alcotest.(check int) "pull gauge sampled" 7 (find ());
  v := 9;
  Alcotest.(check int) "resampled at snapshot" 9 (find ());
  (* replacement: the latest registration wins *)
  Metrics.gauge_fn "ric_test_pull_gauge" (fun () -> 123);
  Alcotest.(check int) "re-registration replaces" 123 (find ());
  (* a raising pull function must not poison the scrape *)
  Metrics.gauge_fn "ric_test_pull_gauge_bad" (fun () -> failwith "boom");
  ignore (Metrics.to_prometheus ())

let test_prometheus_exposition () =
  let c =
    Metrics.counter ~help:{|weird "help" with \ and
newline|} ~labels:[ ("mode", {|se"q\|}) ] "ric_test_promtext_total"
  in
  Metrics.add c 5;
  ignore (Metrics.histogram ~help:"h" "ric_test_promtext_seconds");
  let text = Metrics.to_prometheus () in
  let has needle =
    let nn = String.length needle and nt = String.length text in
    let rec go i =
      i + nn <= nt && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle) true
        (has needle))
    [
      (* HELP escapes backslash and newline but leaves quotes raw *)
      "# HELP ric_test_promtext_total weird \"help\" with \\\\ and\\nnewline";
      "# TYPE ric_test_promtext_total counter";
      {|ric_test_promtext_total{mode="se\"q\\"} 5|};
      "# TYPE ric_test_promtext_seconds histogram";
      {|ric_test_promtext_seconds_bucket{le="1e-06"} 0|};
      {|ric_test_promtext_seconds_bucket{le="+Inf"} 0|};
      "ric_test_promtext_seconds_sum 0";
      "ric_test_promtext_seconds_count 0";
    ];
  (* every line is a comment or a sample — no blank/garbage lines *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "line %S well-formed" line)
          true
          (String.length line > 0
          && (line.[0] = '#'
             || String.contains line ' ' (* sample: name/labels SP value *))))
    (String.split_on_char '\n' text)

(* ------------------------------------------------------------------ *)
(* Trace: JSONL round-trip and summarize *)

let with_trace_file f =
  let path = Filename.temp_file "ric_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_trace_roundtrip () =
  with_trace_file @@ fun path ->
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  (* spans on the null sink must be free no-ops *)
  let sp = Trace.start "ignored" in
  Trace.set_int sp "k" 1;
  Trace.finish sp;
  Trace.open_file path;
  Alcotest.(check bool) "enabled after open" true (Trace.enabled ());
  Trace.with_span "outer" (fun outer ->
      Trace.set_str outer "mode" "seq";
      Trace.set_int outer "steps" 17;
      Trace.set_int outer "steps" 42;
      (* last write wins *)
      Trace.set_str outer "quoting" "a\"b\\c\nd";
      Trace.with_span "inner" (fun inner -> Trace.set_bool inner "found" true));
  (match Trace.with_span "failing" (fun _ -> failwith "boom") with
   | () -> Alcotest.fail "with_span must re-raise"
   | exception Failure _ -> ());
  Alcotest.(check int) "three spans written" 3 (Trace.spans_written ());
  Trace.close ();
  let { Trace_summary.spans; malformed } = Trace_summary.load path in
  Alcotest.(check int) "no malformed lines" 0 malformed;
  Alcotest.(check int) "three spans loaded" 3 (List.length spans);
  let find name =
    match List.find_opt (fun sp -> sp.Trace_summary.name = name) spans with
    | Some sp -> sp
    | None -> Alcotest.failf "span %s missing" name
  in
  let outer = find "outer" and inner = find "inner" and failing = find "failing" in
  Alcotest.(check int) "outer is a root" 0 outer.Trace_summary.parent;
  Alcotest.(check int) "inner parented under outer" outer.Trace_summary.id
    inner.Trace_summary.parent;
  Alcotest.(check bool) "last attr write wins" true
    (List.assoc_opt "steps" outer.Trace_summary.attrs
    = Some (Ric_text.Json.Int 42));
  Alcotest.(check bool) "string attrs survive escaping" true
    (List.assoc_opt "quoting" outer.Trace_summary.attrs
    = Some (Ric_text.Json.Str "a\"b\\c\nd"));
  Alcotest.(check bool) "bool attr round-trips" true
    (List.assoc_opt "found" inner.Trace_summary.attrs
    = Some (Ric_text.Json.Bool true));
  Alcotest.(check bool) "exception recorded" true
    (match List.assoc_opt "error" failing.Trace_summary.attrs with
    | Some (Ric_text.Json.Str s) -> s <> ""
    | _ -> false);
  Alcotest.(check bool) "inner nested in outer's window" true
    (inner.Trace_summary.start_us >= outer.Trace_summary.start_us
    && inner.Trace_summary.start_us + inner.Trace_summary.dur_us
       <= outer.Trace_summary.start_us + outer.Trace_summary.dur_us + 1)

let test_trace_summarize () =
  (* a hand-written fixture with known durations, a torn line, and a
     steps/mode attribute per root *)
  let path = Filename.temp_file "ric_obs_fixture" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc
        {|{"id":1,"parent":0,"name":"decide","start_us":100,"dur_us":900,"attrs":{"mode":"seq","steps":9000}}
{"id":2,"parent":1,"name":"disjunct","start_us":150,"dur_us":700,"attrs":{}}
{"id":3,"parent":0,"name":"decide","start_us":2000,"dur_us":100,"attrs":{"mode":"par","steps":500}}
{"id":4,"parent":99,"name":"orphan","start_us":2500,"dur_us":10,"attrs":{}}
this line is torn
|};
      close_out oc;
      let { Trace_summary.spans; malformed } = Trace_summary.load path in
      Alcotest.(check int) "torn line counted" 1 malformed;
      Alcotest.(check int) "four spans" 4 (List.length spans);
      let s = Trace_summary.summarize ~top:2 spans in
      Alcotest.(check int) "top bounds slowest" 2 (List.length s.Trace_summary.slowest);
      (match s.Trace_summary.slowest with
       | first :: _ ->
         Alcotest.(check int) "slowest is the 900µs decide" 1 first.Trace_summary.id
       | [] -> Alcotest.fail "no slowest spans");
      (* an orphan (unknown parent) counts as a root *)
      Alcotest.(check int) "roots" 3 s.Trace_summary.roots;
      Alcotest.(check int) "wall clock spans the file" 2410 s.Trace_summary.wall_us;
      let phase name =
        match
          List.find_opt
            (fun r -> r.Trace_summary.ph_name = name)
            s.Trace_summary.phases
        with
        | Some r -> r
        | None -> Alcotest.failf "phase %s missing" name
      in
      Alcotest.(check int) "decide phase total" 1000 (phase "decide").Trace_summary.ph_total_us;
      Alcotest.(check int) "decide phase steps" 9500 (phase "decide").Trace_summary.ph_steps;
      Alcotest.(check int) "decide phase max" 900 (phase "decide").Trace_summary.ph_max_us;
      let mode m =
        match
          List.find_opt
            (fun r -> r.Trace_summary.md_mode = m)
            s.Trace_summary.modes
        with
        | Some r -> r
        | None -> Alcotest.failf "mode %s missing" m
      in
      Alcotest.(check int) "seq mode steps" 9000 (mode "seq").Trace_summary.md_steps;
      Alcotest.(check int) "par mode spans" 1 (mode "par").Trace_summary.md_count;
      (* children: the 700µs disjunct hangs under span 1 *)
      let root = List.find (fun sp -> sp.Trace_summary.id = 1) spans in
      Alcotest.(check int) "one child under the slow decide" 1
        (List.length (Trace_summary.children spans root));
      (* the report renders without raising *)
      let buf = Buffer.create 256 in
      Trace_summary.pp (Format.formatter_of_buffer buf) ~malformed spans s;
      Alcotest.(check bool) "report nonempty" true (Buffer.length buf > 0))

(* ------------------------------------------------------------------ *)
(* Tracing must not change verdicts *)

let scenarios_dir () =
  let rec up d n =
    if n = 0 then None
    else
      let cand = Filename.concat d "scenarios" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else up (Filename.dirname d) (n - 1)
  in
  match up (Sys.getcwd ()) 6 with
  | Some d -> d
  | None -> Alcotest.fail "scenarios/ not found upward of cwd"

let rcdp_label ~trace (s : Scenario.t) q =
  let clock = Budget.create ~max_steps:20_000 () in
  ignore trace;
  match
    Rcdp.decide ~clock ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
  with
  | Rcdp.Complete -> "complete"
  | Rcdp.Incomplete _ -> "incomplete"
  | exception Rcdp.Unsupported _ -> "unsupported"
  | exception Rcdp.Not_partially_closed _ -> "not_partially_closed"
  | exception Budget.Exhausted reason -> "timeout:" ^ Budget.reason_name reason

let test_tracing_changes_no_verdict () =
  with_trace_file @@ fun path ->
  let dir = scenarios_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ric")
    |> List.sort compare
  in
  Alcotest.(check bool) "found scenario files" true (files <> []);
  List.iter
    (fun file ->
      let s = Scenario.load (Filename.concat dir file) in
      List.iter
        (fun (qname, q) ->
          let off = rcdp_label ~trace:false s q in
          Trace.open_file path;
          let on = rcdp_label ~trace:true s q in
          let written = Trace.spans_written () in
          Trace.close ();
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdict unchanged by tracing" file qname)
            off on;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s traced run wrote spans" file qname)
            true (written > 0))
        s.Scenario.queries)
    files

(* ------------------------------------------------------------------ *)
(* Profile: the explain accumulator *)

let test_profile_accumulator () =
  let p = Profile.create () in
  let s = Profile.start_search p ~names:[| "R"; "S" |] in
  Profile.step s 0;
  Profile.step s 0;
  Profile.step s 1;
  Profile.prune s 1 (Some "cc1");
  Profile.prune s 1 None;
  Profile.finish_search p s;
  (* a second search with the same plan merges, not replaces *)
  let s2 = Profile.start_search p ~names:[| "R"; "S" |] in
  Profile.step s2 0;
  Profile.prune s2 0 (Some "cc1");
  Profile.finish_search p s2;
  Profile.bump p "pool_steps" 7;
  Profile.bump p "e2_nodes" 3;
  Profile.note p "mode" "seq";
  Profile.note p "mode" "par:2";
  let snap = Profile.snapshot p in
  let level i =
    match
      List.find_opt (fun r -> r.Profile.lv_index = i) snap.Profile.levels
    with
    | Some r -> r
    | None -> Alcotest.failf "level %d missing" i
  in
  Alcotest.(check string) "level 0 name" "R" (level 0).Profile.lv_name;
  Alcotest.(check int) "level 0 steps merged" 3 (level 0).Profile.lv_steps;
  Alcotest.(check int) "level 0 prunes" 1 (level 0).Profile.lv_prunes;
  Alcotest.(check int) "level 1 steps" 1 (level 1).Profile.lv_steps;
  Alcotest.(check int) "level 1 prunes (named + anonymous)" 2
    (level 1).Profile.lv_prunes;
  Alcotest.(check (list (pair string int))) "constraint attribution" [ ("cc1", 2) ]
    snap.Profile.constraints;
  Alcotest.(check (option int)) "counter bump" (Some 7)
    (List.assoc_opt "pool_steps" snap.Profile.counters);
  Alcotest.(check (option string)) "note last-write-wins" (Some "par:2")
    (List.assoc_opt "mode" snap.Profile.notes);
  (* e2_nodes is a diagnostic counter, not a tick site: only level
     steps and *_steps counters count as attributed *)
  Alcotest.(check int) "attributed = levels + *_steps counters" (3 + 1 + 7)
    (Profile.attributed_steps snap)

(* Exact parity with the budget: in the CQ decide paths every
   [Budget.tick] is mirrored into the profile (search levels, pool,
   witness growth), so the attributed steps equal [Budget.steps] — in
   every search mode, including the parallel fan-out. *)

let parity_source =
  {|
  schema R(k, w).
  schema S(k, t).
  master M(k, w).
  master N(k).
  rows R { (m0, v0) (m1, v1) }.
  rows S { (m0, a) }.
  rows M { (m0, v0) (m1, v1) (m2, v2) (m3, v3) (m4, v4) (m5, v5) }.
  rows N { (m0) (m1) (m2) }.
  query QJ(k) :- R(k, w), S(k, t).
  constraint BR(k, w) :- R(k, w) => M[0, 1].
  constraint BS(k) :- S(k, t) => N[0].
|}

let rcdp_profiled ~search s q =
  let profile = Profile.create () in
  let clock = Budget.create () in
  let verdict =
    match
      Rcdp.decide ~clock ~search ~profile ~schema:s.Scenario.db_schema
        ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s)
        ~db:s.Scenario.db q
    with
    | Rcdp.Complete -> "complete"
    | Rcdp.Incomplete _ -> "incomplete"
  in
  (verdict, Budget.steps clock, Profile.snapshot profile)

let test_profile_budget_parity () =
  let s = Scenario.parse parity_source in
  let q =
    match Scenario.find_query s "QJ" with
    | Some q -> q
    | None -> Alcotest.fail "QJ missing"
  in
  let _, seq_steps, seq_snap = rcdp_profiled ~search:Search_mode.Seq s q in
  Alcotest.(check bool) "the search did real work" true (seq_steps > 0);
  List.iter
    (fun search ->
      let name = Search_mode.to_string search in
      let verdict, steps, snap = rcdp_profiled ~search s q in
      Alcotest.(check string) (name ^ " verdict unchanged") "incomplete" verdict;
      Alcotest.(check int)
        (name ^ " attributed steps = budget steps")
        steps
        (Profile.attributed_steps snap);
      (* the parallel tree is node-for-node the sequential tree, so the
         merged per-level totals are the sequential ones *)
      Alcotest.(check bool)
        (name ^ " per-level totals match seq")
        true
        (snap.Profile.levels = seq_snap.Profile.levels))
    [ Search_mode.Seq; Search_mode.Inc; Search_mode.Par 2 ]

let test_profile_deterministic () =
  let s = Scenario.parse parity_source in
  let q = Option.get (Scenario.find_query s "QJ") in
  let _, steps1, snap1 = rcdp_profiled ~search:Search_mode.Seq s q in
  let _, steps2, snap2 = rcdp_profiled ~search:Search_mode.Seq s q in
  Alcotest.(check int) "steps deterministic" steps1 steps2;
  Alcotest.(check bool) "snapshot deterministic" true (snap1 = snap2)

let test_profile_rcqp_parity () =
  let s = Scenario.parse parity_source in
  let q = Option.get (Scenario.find_query s "QJ") in
  let profile = Profile.create () in
  let clock = Budget.create () in
  let (_ : Rcqp.verdict) =
    Rcqp.decide ~clock ~profile ~schema:s.Scenario.db_schema
      ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) q
  in
  let snap = Profile.snapshot profile in
  Alcotest.(check bool) "rcqp ticked" true (Budget.steps clock > 0);
  Alcotest.(check int) "rcqp attributed = budget steps" (Budget.steps clock)
    (Profile.attributed_steps snap)

(* ------------------------------------------------------------------ *)
(* Recorder: the flight-recorder ring *)

let dump_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let test_recorder_ring () =
  Recorder.set_capacity 16;
  let base = Recorder.recorded () in
  for i = 1 to 20 do
    Recorder.record ~kind:"request" ~req_id:(Printf.sprintf "r%d" i) ~conn:i
      "de\"tail\nline"
  done;
  Alcotest.(check int) "total recorded" (base + 20) (Recorder.recorded ());
  let evs = Recorder.events () in
  Alcotest.(check int) "ring keeps only the window" 16 (List.length evs);
  let seqs = List.map (fun e -> e.Recorder.seq) evs in
  Alcotest.(check (list int)) "oldest first, contiguous" (List.sort compare seqs) seqs;
  (match List.rev evs with
   | last :: _ -> Alcotest.(check string) "newest survives" "r20" last.Recorder.req_id
   | [] -> Alcotest.fail "ring empty");
  let path = Filename.temp_file "ric_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let written = Recorder.dump path in
      Alcotest.(check int) "dump count" 16 written;
      let lines = dump_lines path in
      Alcotest.(check int) "one line per event" 16 (List.length lines);
      List.iter
        (fun line ->
          match Ric_text.Json.of_string_result line with
          | Error (msg, _, _) -> Alcotest.failf "dump line not JSON (%s): %s" msg line
          | Ok (Ric_text.Json.Obj fields) ->
            List.iter
              (fun k ->
                if not (List.mem_assoc k fields) then
                  Alcotest.failf "dump line lacks %S: %s" k line)
              [ "seq"; "t_us"; "kind"; "req_id"; "conn"; "detail" ];
            Alcotest.(check bool) "detail escaping survives" true
              (List.assoc "detail" fields = Ric_text.Json.Str "de\"tail\nline")
          | Ok _ -> Alcotest.failf "dump line not an object: %s" line)
        lines)

let test_recorder_concurrent () =
  Recorder.set_capacity 64;
  let base = Recorder.recorded () in
  let per_domain = 2000 in
  let worker tag () =
    for i = 1 to per_domain do
      Recorder.record ~kind:"request" ~req_id:(Printf.sprintf "%s%d" tag i) "x"
    done
  in
  let d1 = Domain.spawn (worker "a") and d2 = Domain.spawn (worker "b") in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost claims" (base + (2 * per_domain))
    (Recorder.recorded ());
  let path = Filename.temp_file "ric_flight_conc" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let written = Recorder.dump path in
      Alcotest.(check int) "full window dumped" 64 written;
      List.iter
        (fun line ->
          match Ric_text.Json.of_string_result line with
          | Ok (Ric_text.Json.Obj _) -> ()
          | _ -> Alcotest.failf "unparseable dump line under contention: %s" line)
        (dump_lines path))

(* ------------------------------------------------------------------ *)
(* Trace summarize: the --req-id subtree filter *)

let test_filter_req_id () =
  let span ~id ~parent ~name ?req_id () =
    {
      Trace_summary.id;
      parent;
      name;
      start_us = id * 10;
      dur_us = 5;
      attrs =
        (match req_id with
         | Some r -> [ ("req_id", Ric_text.Json.Str r) ]
         | None -> []);
    }
  in
  let spans =
    [
      span ~id:1 ~parent:0 ~name:"server.op" ~req_id:"a" ();
      span ~id:2 ~parent:1 ~name:"rcdp.decide" ();
      span ~id:3 ~parent:2 ~name:"search" ();
      span ~id:4 ~parent:0 ~name:"server.op" ~req_id:"b" ();
      span ~id:5 ~parent:4 ~name:"rcqp.decide" ();
      span ~id:6 ~parent:0 ~name:"unrelated" ();
    ]
  in
  let ids rid =
    Trace_summary.filter_req_id rid spans
    |> List.map (fun sp -> sp.Trace_summary.id)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "request a: stamped root + descendants" [ 1; 2; 3 ]
    (ids "a");
  Alcotest.(check (list int)) "request b" [ 4; 5 ] (ids "b");
  Alcotest.(check (list int)) "unknown id matches nothing" [] (ids "zz")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "labels" `Quick test_labels_distinguish;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "two-domain increments" `Quick test_concurrent_increments;
          Alcotest.test_case "pull gauges" `Quick test_gauge_fn;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "summarize fixture" `Quick test_trace_summarize;
          Alcotest.test_case "tracing changes no verdict" `Quick
            test_tracing_changes_no_verdict;
          Alcotest.test_case "req-id subtree filter" `Quick test_filter_req_id;
        ] );
      ( "profile",
        [
          Alcotest.test_case "accumulator" `Quick test_profile_accumulator;
          Alcotest.test_case "budget parity across modes" `Quick
            test_profile_budget_parity;
          Alcotest.test_case "deterministic snapshots" `Quick
            test_profile_deterministic;
          Alcotest.test_case "rcqp parity" `Quick test_profile_rcqp_parity;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring + dump" `Quick test_recorder_ring;
          Alcotest.test_case "concurrent records" `Quick test_recorder_concurrent;
        ] );
    ]
