(* Tests for the ric_obs telemetry layer: histogram bucket boundaries,
   concurrent counter increments from two domains, the Prometheus text
   exposition, the trace JSONL round-trip through the project's own
   JSON parser plus the offline summarizer, and the guarantee that
   turning tracing on changes no verdict on any scenario file. *)

open Ric_obs
module Scenario = Ric_text.Scenario
module Trace_summary = Ric_text.Trace_summary
open Ric_complete

(* The registry is process-global and never resets, so every test
   registers uniquely-named metrics and asserts on deltas. *)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_basics () =
  let c = Metrics.counter ~help:"test" "ric_test_counter_basics_total" in
  let v0 = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" (v0 + 42) (Metrics.counter_value c);
  let again = Metrics.counter ~help:"test" "ric_test_counter_basics_total" in
  Metrics.incr again;
  Alcotest.(check int) "re-registration returns the same counter" (v0 + 43)
    (Metrics.counter_value c);
  (match Metrics.gauge "ric_test_counter_basics_total" with
   | (_ : Metrics.gauge) -> Alcotest.fail "kind clash must be rejected"
   | exception Invalid_argument _ -> ());
  match Metrics.counter "not a metric name" with
  | (_ : Metrics.counter) -> Alcotest.fail "malformed name must be rejected"
  | exception Invalid_argument _ -> ()

let test_labels_distinguish () =
  let a = Metrics.counter ~labels:[ ("op", "a") ] "ric_test_labeled_total" in
  let b = Metrics.counter ~labels:[ ("op", "b") ] "ric_test_labeled_total" in
  Metrics.incr a;
  Alcotest.(check int) "labels separate series" 0 (Metrics.counter_value b);
  (* label order must not matter for identity *)
  let a' =
    Metrics.counter
      ~labels:[ ("x", "1"); ("op", "a") ]
      "ric_test_label_order_total"
  and a'' =
    Metrics.counter
      ~labels:[ ("op", "a"); ("x", "1") ]
      "ric_test_label_order_total"
  in
  Metrics.incr a';
  Alcotest.(check int) "sorted label identity" 1 (Metrics.counter_value a'')

let test_histogram_buckets () =
  let bounds = Metrics.bucket_bounds in
  Alcotest.(check int) "13 finite buckets" 13 (Array.length bounds);
  Alcotest.(check (float 1e-12)) "first bound is 1µs" 1e-6 bounds.(0);
  Array.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "bound %d is 4x bound %d" i (i - 1))
          (4. *. bounds.(i - 1))
          b)
    bounds;
  let h = Metrics.histogram ~help:"test" "ric_test_hist_seconds" in
  (* one observation exactly on a bound (inclusive: le), one inside a
     bucket, one beyond every bound, and a garbage value *)
  Metrics.observe h 1e-6;
  Metrics.observe h 5e-6;
  (* (4µs, 16µs] *)
  Metrics.observe h 1e9;
  Metrics.observe h Float.nan;
  (* clamped to 0, lands in the first bucket *)
  let snap =
    match
      List.find_opt
        (fun s -> s.Metrics.name = "ric_test_hist_seconds")
        (Metrics.snapshot ())
    with
    | Some { Metrics.value = Metrics.Histogram snap; _ } -> snap
    | _ -> Alcotest.fail "histogram missing from snapshot"
  in
  Alcotest.(check int) "count" 4 snap.Metrics.count;
  (* the +Inf bucket is cumulative like the rest: it equals the count *)
  Alcotest.(check int) "+Inf is cumulative" 4 snap.Metrics.inf_count;
  let cumulative_at bound =
    match
      Array.find_opt (fun (b, _) -> b = bound) snap.Metrics.buckets
    with
    | Some (_, n) -> n
    | None -> Alcotest.failf "no bucket with bound %g" bound
  in
  (* le semantics: the 1µs observation (and the clamped NaN) sit in the
     first bucket, cumulative counts grow from there *)
  Alcotest.(check int) "le 1µs" 2 (cumulative_at bounds.(0));
  Alcotest.(check int) "le 4µs" 2 (cumulative_at bounds.(1));
  Alcotest.(check int) "le 16µs" 3 (cumulative_at bounds.(2));
  let top = cumulative_at bounds.(Array.length bounds - 1) in
  Alcotest.(check int) "le top bound" 3 top;
  Alcotest.(check int) "one observation overflowed every finite bucket" 1
    (snap.Metrics.count - top);
  Alcotest.(check bool) "sum includes the large outlier" true
    (snap.Metrics.sum >= 1e9)

let test_concurrent_increments () =
  let c = Metrics.counter "ric_test_concurrent_total" in
  let h = Metrics.histogram "ric_test_concurrent_seconds" in
  let per_domain = 50_000 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done;
    for _ = 1 to 1000 do
      Metrics.observe h 1e-5
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost counter increments" (2 * per_domain)
    (Metrics.counter_value c);
  match
    List.find_opt
      (fun s -> s.Metrics.name = "ric_test_concurrent_seconds")
      (Metrics.snapshot ())
  with
  | Some { Metrics.value = Metrics.Histogram snap; _ } ->
    Alcotest.(check int) "no lost observations" 2000 snap.Metrics.count
  | _ -> Alcotest.fail "histogram missing from snapshot"

let test_gauge_fn () =
  let v = ref 7 in
  Metrics.gauge_fn ~help:"test" "ric_test_pull_gauge" (fun () -> !v);
  let find () =
    match
      List.find_opt
        (fun s -> s.Metrics.name = "ric_test_pull_gauge")
        (Metrics.snapshot ())
    with
    | Some { Metrics.value = Metrics.Gauge g; _ } -> g
    | _ -> Alcotest.fail "pull gauge missing from snapshot"
  in
  Alcotest.(check int) "pull gauge sampled" 7 (find ());
  v := 9;
  Alcotest.(check int) "resampled at snapshot" 9 (find ());
  (* replacement: the latest registration wins *)
  Metrics.gauge_fn "ric_test_pull_gauge" (fun () -> 123);
  Alcotest.(check int) "re-registration replaces" 123 (find ());
  (* a raising pull function must not poison the scrape *)
  Metrics.gauge_fn "ric_test_pull_gauge_bad" (fun () -> failwith "boom");
  ignore (Metrics.to_prometheus ())

let test_prometheus_exposition () =
  let c =
    Metrics.counter ~help:{|weird "help" with \ and
newline|} ~labels:[ ("mode", {|se"q\|}) ] "ric_test_promtext_total"
  in
  Metrics.add c 5;
  ignore (Metrics.histogram ~help:"h" "ric_test_promtext_seconds");
  let text = Metrics.to_prometheus () in
  let has needle =
    let nn = String.length needle and nt = String.length text in
    let rec go i =
      i + nn <= nt && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle) true
        (has needle))
    [
      (* HELP escapes backslash and newline but leaves quotes raw *)
      "# HELP ric_test_promtext_total weird \"help\" with \\\\ and\\nnewline";
      "# TYPE ric_test_promtext_total counter";
      {|ric_test_promtext_total{mode="se\"q\\"} 5|};
      "# TYPE ric_test_promtext_seconds histogram";
      {|ric_test_promtext_seconds_bucket{le="1e-06"} 0|};
      {|ric_test_promtext_seconds_bucket{le="+Inf"} 0|};
      "ric_test_promtext_seconds_sum 0";
      "ric_test_promtext_seconds_count 0";
    ];
  (* every line is a comment or a sample — no blank/garbage lines *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "line %S well-formed" line)
          true
          (String.length line > 0
          && (line.[0] = '#'
             || String.contains line ' ' (* sample: name/labels SP value *))))
    (String.split_on_char '\n' text)

(* ------------------------------------------------------------------ *)
(* Trace: JSONL round-trip and summarize *)

let with_trace_file f =
  let path = Filename.temp_file "ric_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_trace_roundtrip () =
  with_trace_file @@ fun path ->
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  (* spans on the null sink must be free no-ops *)
  let sp = Trace.start "ignored" in
  Trace.set_int sp "k" 1;
  Trace.finish sp;
  Trace.open_file path;
  Alcotest.(check bool) "enabled after open" true (Trace.enabled ());
  Trace.with_span "outer" (fun outer ->
      Trace.set_str outer "mode" "seq";
      Trace.set_int outer "steps" 17;
      Trace.set_int outer "steps" 42;
      (* last write wins *)
      Trace.set_str outer "quoting" "a\"b\\c\nd";
      Trace.with_span "inner" (fun inner -> Trace.set_bool inner "found" true));
  (match Trace.with_span "failing" (fun _ -> failwith "boom") with
   | () -> Alcotest.fail "with_span must re-raise"
   | exception Failure _ -> ());
  Alcotest.(check int) "three spans written" 3 (Trace.spans_written ());
  Trace.close ();
  let { Trace_summary.spans; malformed } = Trace_summary.load path in
  Alcotest.(check int) "no malformed lines" 0 malformed;
  Alcotest.(check int) "three spans loaded" 3 (List.length spans);
  let find name =
    match List.find_opt (fun sp -> sp.Trace_summary.name = name) spans with
    | Some sp -> sp
    | None -> Alcotest.failf "span %s missing" name
  in
  let outer = find "outer" and inner = find "inner" and failing = find "failing" in
  Alcotest.(check int) "outer is a root" 0 outer.Trace_summary.parent;
  Alcotest.(check int) "inner parented under outer" outer.Trace_summary.id
    inner.Trace_summary.parent;
  Alcotest.(check bool) "last attr write wins" true
    (List.assoc_opt "steps" outer.Trace_summary.attrs
    = Some (Ric_text.Json.Int 42));
  Alcotest.(check bool) "string attrs survive escaping" true
    (List.assoc_opt "quoting" outer.Trace_summary.attrs
    = Some (Ric_text.Json.Str "a\"b\\c\nd"));
  Alcotest.(check bool) "bool attr round-trips" true
    (List.assoc_opt "found" inner.Trace_summary.attrs
    = Some (Ric_text.Json.Bool true));
  Alcotest.(check bool) "exception recorded" true
    (match List.assoc_opt "error" failing.Trace_summary.attrs with
    | Some (Ric_text.Json.Str s) -> s <> ""
    | _ -> false);
  Alcotest.(check bool) "inner nested in outer's window" true
    (inner.Trace_summary.start_us >= outer.Trace_summary.start_us
    && inner.Trace_summary.start_us + inner.Trace_summary.dur_us
       <= outer.Trace_summary.start_us + outer.Trace_summary.dur_us + 1)

let test_trace_summarize () =
  (* a hand-written fixture with known durations, a torn line, and a
     steps/mode attribute per root *)
  let path = Filename.temp_file "ric_obs_fixture" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc
        {|{"id":1,"parent":0,"name":"decide","start_us":100,"dur_us":900,"attrs":{"mode":"seq","steps":9000}}
{"id":2,"parent":1,"name":"disjunct","start_us":150,"dur_us":700,"attrs":{}}
{"id":3,"parent":0,"name":"decide","start_us":2000,"dur_us":100,"attrs":{"mode":"par","steps":500}}
{"id":4,"parent":99,"name":"orphan","start_us":2500,"dur_us":10,"attrs":{}}
this line is torn
|};
      close_out oc;
      let { Trace_summary.spans; malformed } = Trace_summary.load path in
      Alcotest.(check int) "torn line counted" 1 malformed;
      Alcotest.(check int) "four spans" 4 (List.length spans);
      let s = Trace_summary.summarize ~top:2 spans in
      Alcotest.(check int) "top bounds slowest" 2 (List.length s.Trace_summary.slowest);
      (match s.Trace_summary.slowest with
       | first :: _ ->
         Alcotest.(check int) "slowest is the 900µs decide" 1 first.Trace_summary.id
       | [] -> Alcotest.fail "no slowest spans");
      (* an orphan (unknown parent) counts as a root *)
      Alcotest.(check int) "roots" 3 s.Trace_summary.roots;
      Alcotest.(check int) "wall clock spans the file" 2410 s.Trace_summary.wall_us;
      let phase name =
        match
          List.find_opt
            (fun r -> r.Trace_summary.ph_name = name)
            s.Trace_summary.phases
        with
        | Some r -> r
        | None -> Alcotest.failf "phase %s missing" name
      in
      Alcotest.(check int) "decide phase total" 1000 (phase "decide").Trace_summary.ph_total_us;
      Alcotest.(check int) "decide phase steps" 9500 (phase "decide").Trace_summary.ph_steps;
      Alcotest.(check int) "decide phase max" 900 (phase "decide").Trace_summary.ph_max_us;
      let mode m =
        match
          List.find_opt
            (fun r -> r.Trace_summary.md_mode = m)
            s.Trace_summary.modes
        with
        | Some r -> r
        | None -> Alcotest.failf "mode %s missing" m
      in
      Alcotest.(check int) "seq mode steps" 9000 (mode "seq").Trace_summary.md_steps;
      Alcotest.(check int) "par mode spans" 1 (mode "par").Trace_summary.md_count;
      (* children: the 700µs disjunct hangs under span 1 *)
      let root = List.find (fun sp -> sp.Trace_summary.id = 1) spans in
      Alcotest.(check int) "one child under the slow decide" 1
        (List.length (Trace_summary.children spans root));
      (* the report renders without raising *)
      let buf = Buffer.create 256 in
      Trace_summary.pp (Format.formatter_of_buffer buf) ~malformed spans s;
      Alcotest.(check bool) "report nonempty" true (Buffer.length buf > 0))

(* ------------------------------------------------------------------ *)
(* Tracing must not change verdicts *)

let scenarios_dir () =
  let rec up d n =
    if n = 0 then None
    else
      let cand = Filename.concat d "scenarios" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else up (Filename.dirname d) (n - 1)
  in
  match up (Sys.getcwd ()) 6 with
  | Some d -> d
  | None -> Alcotest.fail "scenarios/ not found upward of cwd"

let rcdp_label ~trace (s : Scenario.t) q =
  let clock = Budget.create ~max_steps:20_000 () in
  ignore trace;
  match
    Rcdp.decide ~clock ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
  with
  | Rcdp.Complete -> "complete"
  | Rcdp.Incomplete _ -> "incomplete"
  | exception Rcdp.Unsupported _ -> "unsupported"
  | exception Rcdp.Not_partially_closed _ -> "not_partially_closed"
  | exception Budget.Exhausted reason -> "timeout:" ^ Budget.reason_name reason

let test_tracing_changes_no_verdict () =
  with_trace_file @@ fun path ->
  let dir = scenarios_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ric")
    |> List.sort compare
  in
  Alcotest.(check bool) "found scenario files" true (files <> []);
  List.iter
    (fun file ->
      let s = Scenario.load (Filename.concat dir file) in
      List.iter
        (fun (qname, q) ->
          let off = rcdp_label ~trace:false s q in
          Trace.open_file path;
          let on = rcdp_label ~trace:true s q in
          let written = Trace.spans_written () in
          Trace.close ();
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdict unchanged by tracing" file qname)
            off on;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s traced run wrote spans" file qname)
            true (written > 0))
        s.Scenario.queries)
    files

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "labels" `Quick test_labels_distinguish;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "two-domain increments" `Quick test_concurrent_increments;
          Alcotest.test_case "pull gauges" `Quick test_gauge_fn;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl round-trip" `Quick test_trace_roundtrip;
          Alcotest.test_case "summarize fixture" `Quick test_trace_summarize;
          Alcotest.test_case "tracing changes no verdict" `Quick
            test_tracing_changes_no_verdict;
        ] );
    ]
