(* Tests for the query languages: CQ (tableaux, evaluation,
   satisfiability, containment), UCQ, ∃FO⁺ (DNF expansion), FO
   (active-domain evaluation) and the Lemma 3.2 single-relation
   encoding. *)

open Ric_relational
open Ric_query

let relation_testable = Alcotest.testable Relation.pp Relation.equal
let v = Term.var
let i = Term.int

let schema =
  Schema.make
    [
      Schema.relation "E" [ Schema.attribute "src"; Schema.attribute "dst" ];
      Schema.relation "L" [ Schema.attribute "node"; Schema.attribute ~dom:Domain.boolean "flag" ];
    ]

let db =
  Database.of_list schema
    [
      ("E", Relation.of_int_rows [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 1 ]; [ 1; 3 ] ]);
      ("L", Relation.of_int_rows [ [ 1; 0 ]; [ 2; 1 ]; [ 3; 1 ] ]);
    ]

(* ------------------------------------------------------------------ *)
(* CQ evaluation *)

let test_cq_single_atom () =
  let q = Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check int) "all edges" 4 (Relation.cardinal (Cq.eval db q))

let test_cq_join () =
  (* two-step paths *)
  let q =
    Cq.make ~head:[ v "x"; v "z" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
  in
  let expected = Relation.of_int_rows [ [ 1; 3 ]; [ 2; 1 ]; [ 3; 2 ]; [ 3; 3 ]; [ 1; 1 ] ] in
  Alcotest.check relation_testable "paths" expected (Cq.eval db q)

let test_cq_constants () =
  let q = Cq.make ~head:[ v "y" ] [ Atom.make "E" [ i 1; v "y" ] ] in
  Alcotest.check relation_testable "successors of 1"
    (Relation.of_int_rows [ [ 2 ]; [ 3 ] ])
    (Cq.eval db q)

let test_cq_eqs () =
  (* E(x, y) ∧ x = y: no self loops in db *)
  let q = Cq.make ~eqs:[ (v "x", v "y") ] ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "no self loop" true (Relation.is_empty (Cq.eval db q));
  (* equality to a constant acts as selection *)
  let q2 =
    Cq.make ~eqs:[ (v "x", i 2) ] ~head:[ v "y" ] [ Atom.make "E" [ v "x"; v "y" ] ]
  in
  Alcotest.check relation_testable "selection" (Relation.of_int_rows [ [ 3 ] ]) (Cq.eval db q2)

let test_cq_neqs () =
  let q =
    Cq.make ~neqs:[ (v "x", i 1) ] ~head:[ v "x"; v "y" ] [ Atom.make "E" [ v "x"; v "y" ] ]
  in
  Alcotest.(check int) "x ≠ 1" 2 (Relation.cardinal (Cq.eval db q))

let test_cq_boolean () =
  let yes = Cq.boolean [ Atom.make "E" [ i 1; i 2 ] ] in
  let no = Cq.boolean [ Atom.make "E" [ i 2; i 2 ] ] in
  Alcotest.(check bool) "holds" true (Cq.holds db yes);
  Alcotest.(check bool) "does not hold" false (Cq.holds db no);
  Alcotest.(check int) "nonempty boolean answer is the 0-tuple" 1
    (Relation.cardinal (Cq.eval db yes))

let test_cq_contradiction () =
  let q =
    Cq.make
      ~eqs:[ (v "x", i 1); (v "x", i 2) ]
      ~head:[ v "x" ]
      [ Atom.make "E" [ v "x"; v "y" ] ]
  in
  Alcotest.(check bool) "eq contradiction" true (Relation.is_empty (Cq.eval db q));
  let q2 = Cq.make ~neqs:[ (v "x", v "x") ] ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "x ≠ x" true (Relation.is_empty (Cq.eval db q2))

let test_cq_unsafe () =
  let q = Cq.make ~head:[ v "z" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "unsafe raises" true
    (try
       ignore (Cq.eval db q);
       false
     with Invalid_argument _ -> true)

let test_cq_repeated_var () =
  let d2 = Database.add_tuple db "E" (Tuple.of_ints [ 5; 5 ]) in
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "x" ] ] in
  Alcotest.check relation_testable "self loops" (Relation.of_int_rows [ [ 5 ] ]) (Cq.eval d2 q)

(* ------------------------------------------------------------------ *)
(* Satisfiability *)

let test_cq_satisfiable () =
  let sat = Cq.make ~neqs:[ (v "x", v "y") ] ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "neq satisfiable" true (Cq.satisfiable schema sat);
  let unsat =
    Cq.make
      ~eqs:[ (v "x", v "y") ]
      ~neqs:[ (v "x", v "y") ]
      ~head:[ v "x" ]
      [ Atom.make "E" [ v "x"; v "y" ] ]
  in
  Alcotest.(check bool) "eq/neq clash" false (Cq.satisfiable schema unsat)

let test_cq_satisfiable_finite_domain () =
  (* three pairwise-distinct values in the two-element boolean domain *)
  let q =
    Cq.make
      ~neqs:[ (v "a", v "b"); (v "b", v "c"); (v "a", v "c") ]
      ~head:[ v "a" ]
      [
        Atom.make "L" [ v "x"; v "a" ];
        Atom.make "L" [ v "y"; v "b" ];
        Atom.make "L" [ v "z"; v "c" ];
      ]
  in
  Alcotest.(check bool) "pigeonhole in d_f" false (Cq.satisfiable schema q);
  let q2 =
    Cq.make ~neqs:[ (v "a", v "b") ] ~head:[ v "a" ]
      [ Atom.make "L" [ v "x"; v "a" ]; Atom.make "L" [ v "y"; v "b" ] ]
  in
  Alcotest.(check bool) "two distinct fit" true (Cq.satisfiable schema q2)

(* ------------------------------------------------------------------ *)
(* Containment (Chandra–Merlin) *)

let test_cq_containment () =
  let paths2 =
    Cq.make ~head:[ v "x"; v "z" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
  in
  let relaxed =
    Cq.make ~head:[ v "x"; v "z" ]
      [ Atom.make "E" [ v "x"; v "w" ]; Atom.make "E" [ v "u"; v "z" ] ]
  in
  Alcotest.(check bool) "2-paths ⊆ relaxed" true (Cq.contained_in schema paths2 relaxed);
  Alcotest.(check bool) "relaxed ⊄ 2-paths" false (Cq.contained_in schema relaxed paths2);
  Alcotest.(check bool) "self containment" true (Cq.equivalent schema paths2 paths2)

let test_cq_containment_redundant_atom () =
  let q1 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  let q2 =
    Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "x"; v "y'" ] ]
  in
  Alcotest.(check bool) "equivalent modulo redundancy" true (Cq.equivalent schema q1 q2)

(* ------------------------------------------------------------------ *)
(* Tableau round trips *)

let test_tableau_roundtrip () =
  let q =
    Cq.make
      ~eqs:[ (v "y", i 2) ]
      ~neqs:[ (v "x", v "z") ]
      ~head:[ v "x" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
  in
  let tab = Option.get (Tableau.of_cq schema q) in
  Alcotest.check relation_testable "tableau preserves semantics" (Cq.eval db q)
    (Cq.eval db (Tableau.to_cq tab));
  Alcotest.(check int) "patterns" 2 (List.length tab.Tableau.patterns)

let test_tableau_instantiate () =
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  let tab = Option.get (Tableau.of_cq schema q) in
  let mu = Valuation.of_list [ ("x", Value.int 7); ("y", Value.int 8) ] in
  let delta = Tableau.instantiate tab mu in
  Alcotest.(check int) "one tuple" 1 (Database.total_tuples delta);
  Alcotest.(check bool) "summary" true
    (Tuple.equal (Tableau.summary_tuple tab mu) (Tuple.of_ints [ 7 ]))

(* ------------------------------------------------------------------ *)
(* UCQ *)

let test_ucq_union () =
  let q1 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; i 2 ] ] in
  let q2 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; i 3 ] ] in
  let u = Ucq.make [ q1; q2 ] in
  Alcotest.check relation_testable "union"
    (Relation.of_int_rows [ [ 1 ]; [ 2 ] ])
    (Ucq.eval db u)

let test_ucq_arity_mismatch () =
  let q1 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  let q2 = Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Ucq.make [ q1; q2 ]);
       false
     with Invalid_argument _ -> true)

let test_ucq_containment () =
  let q1 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; i 2 ] ] in
  let q2 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "disjunct-wise" true (Ucq.contained_in schema [ q1 ] [ q2; q1 ])

(* ------------------------------------------------------------------ *)
(* ∃FO⁺ *)

let test_efo_dnf () =
  let f =
    Efo.And
      ( Efo.Atom (Atom.make "E" [ v "x"; v "y" ]),
        Efo.Or (Efo.Eq (v "y", i 2), Efo.Eq (v "y", i 3)) )
  in
  let q = Efo.make ~head:[ v "x"; v "y" ] f in
  Alcotest.(check int) "two disjuncts" 2 (Efo.disjunct_count q);
  Alcotest.check relation_testable "eval"
    (Relation.of_int_rows [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ])
    (Efo.eval db q)

let test_efo_shadowing () =
  (* ∃y (E(x,y) ∧ ∃y E(y,x)) — inner y must not capture outer y *)
  let f =
    Efo.Exists
      ( [ "y" ],
        Efo.And
          ( Efo.Atom (Atom.make "E" [ v "x"; v "y" ]),
            Efo.Exists ([ "y" ], Efo.Atom (Atom.make "E" [ v "y"; v "x" ])) ) )
  in
  let q = Efo.make ~head:[ v "x" ] f in
  Alcotest.check relation_testable "shadowing"
    (Relation.of_int_rows [ [ 1 ]; [ 2 ]; [ 3 ] ])
    (Efo.eval db q)

let test_efo_of_cq_preserves () =
  let q =
    Cq.make ~neqs:[ (v "x", i 1) ] ~head:[ v "x"; v "y" ] [ Atom.make "E" [ v "x"; v "y" ] ]
  in
  Alcotest.check relation_testable "of_cq" (Cq.eval db q) (Efo.eval db (Efo.of_cq q))

(* ------------------------------------------------------------------ *)
(* FO *)

let test_fo_negation () =
  let f =
    Fo.Exists
      ( [ "y" ],
        Fo.And
          ( Fo.Atom (Atom.make "E" [ v "x"; v "y" ]),
            Fo.Not (Fo.Atom (Atom.make "E" [ v "x"; i 1 ])) ) )
  in
  let q = Fo.make ~head:[ v "x" ] f in
  Alcotest.check relation_testable "negation"
    (Relation.of_int_rows [ [ 1 ]; [ 2 ] ])
    (Fo.eval db q)

let test_fo_universal () =
  (* nodes x with an outgoing edge such that every successor is
     labelled 1 *)
  let f =
    Fo.And
      ( Fo.Exists ([ "w" ], Fo.Atom (Atom.make "E" [ v "x"; v "w" ])),
        Fo.Forall
          ( [ "y" ],
            Fo.Or
              ( Fo.Not (Fo.Atom (Atom.make "E" [ v "x"; v "y" ])),
                Fo.Atom (Atom.make "L" [ v "y"; i 1 ]) ) ) )
  in
  let q = Fo.make ~head:[ v "x" ] f in
  Alcotest.check relation_testable "universal"
    (Relation.of_int_rows [ [ 1 ]; [ 2 ] ])
    (Fo.eval db q)

let test_fo_free_var_check () =
  Alcotest.(check bool) "free var rejected" true
    (try
       ignore (Fo.make ~head:[] (Fo.Atom (Atom.make "E" [ v "x"; v "y" ])));
       false
     with Invalid_argument _ -> true)

let test_fo_of_cq_agrees () =
  let q =
    Cq.make ~neqs:[ (v "x", v "z") ] ~head:[ v "x" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
  in
  Alcotest.check relation_testable "FO view of CQ" (Cq.eval db q) (Fo.eval db (Fo.of_cq q))

(* ------------------------------------------------------------------ *)
(* Minimization (core computation) *)

let test_minimize_redundant_atom () =
  let q =
    Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "x"; v "y'" ] ]
  in
  let m = Cq.minimize schema q in
  Alcotest.(check int) "one atom survives" 1 (List.length m.Cq.atoms);
  Alcotest.(check bool) "equivalent" true (Cq.equivalent schema q m)

let test_minimize_keeps_core () =
  (* a genuine 2-path cannot shrink *)
  let q =
    Cq.make ~head:[ v "x"; v "z" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
  in
  Alcotest.(check int) "both atoms stay" 2 (List.length (Cq.minimize schema q).Cq.atoms)

let test_minimize_folds_constants () =
  (* E(x,y) ∧ E(x,2): the general atom folds into the specific one
     only when legal — here dropping E(x,2) changes the query, but
     dropping E(x,y) keeps it (y existential): check equivalence *)
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "x"; i 2 ] ] in
  let m = Cq.minimize schema q in
  Alcotest.(check int) "one atom" 1 (List.length m.Cq.atoms);
  Alcotest.check relation_testable "same answers" (Cq.eval db q) (Cq.eval db m)

let test_minimize_neqs_untouched () =
  let q =
    Cq.make ~neqs:[ (v "x", v "y") ] ~head:[ v "x" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "x"; v "y'" ] ]
  in
  Alcotest.(check int) "inequalities disable minimization" 2
    (List.length (Cq.minimize schema q).Cq.atoms)

(* ------------------------------------------------------------------ *)
(* Relational algebra *)

let test_ralgebra_eval () =
  (* σ_{dst = 3}(E) — the paper's σ/π vocabulary *)
  let e = Ralgebra.Select ([ Ralgebra.Col_eq_const (1, Value.int 3) ], Ralgebra.Rel "E") in
  Alcotest.check relation_testable "selection"
    (Relation.of_int_rows [ [ 2; 3 ]; [ 1; 3 ] ])
    (Ralgebra.eval db e);
  let p = Ralgebra.Project ([ 0 ], e) in
  Alcotest.check relation_testable "projection"
    (Relation.of_int_rows [ [ 2 ]; [ 1 ] ])
    (Ralgebra.eval db p)

let test_ralgebra_product_union_diff () =
  let sch1 = Schema.make [ Schema.relation "A" [ Schema.attribute "x" ] ] in
  let d = Database.of_list sch1 [ ("A", Relation.of_int_rows [ [ 1 ]; [ 2 ] ]) ] in
  let prod = Ralgebra.Product (Ralgebra.Rel "A", Ralgebra.Rel "A") in
  Alcotest.(check int) "product" 4 (Relation.cardinal (Ralgebra.eval d prod));
  let selfdiff = Ralgebra.Diff (Ralgebra.Rel "A", Ralgebra.Rel "A") in
  Alcotest.(check bool) "diff empty" true (Relation.is_empty (Ralgebra.eval d selfdiff));
  Alcotest.(check bool) "diff not positive" false (Ralgebra.positive selfdiff)

let test_ralgebra_arity_checks () =
  Alcotest.(check bool) "bad projection rejected" true
    (try
       ignore (Ralgebra.arity schema (Ralgebra.Project ([ 5 ], Ralgebra.Rel "E")));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad union rejected" true
    (try
       ignore (Ralgebra.arity schema (Ralgebra.Union (Ralgebra.Rel "E", Ralgebra.Project ([ 0 ], Ralgebra.Rel "E"))));
       false
     with Invalid_argument _ -> true)

let test_ralgebra_to_ucq () =
  let e =
    Ralgebra.Project
      ( [ 0 ],
        Ralgebra.Select
          ( [ Ralgebra.Col_eq_col (1, 2); Ralgebra.Col_neq_const (0, Value.int 3) ],
            Ralgebra.Product (Ralgebra.Rel "E", Ralgebra.Rel "E") ) )
  in
  Alcotest.check relation_testable "σπ× compiles to UCQ" (Ralgebra.eval db e)
    (Ucq.eval db (Ralgebra.to_ucq schema e))

(* ------------------------------------------------------------------ *)
(* Lemma 3.2: single-relation encoding *)

let test_single_rel_lemma () =
  let enc = Single_rel.encode schema in
  let fd = Single_rel.encode_db enc db in
  let queries =
    [
      Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "E" [ v "x"; v "y" ] ];
      Cq.make ~head:[ v "x"; v "z" ]
        [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ];
      Cq.make ~head:[ v "n" ] [ Atom.make "L" [ v "n"; i 1 ]; Atom.make "E" [ v "n"; v "m" ] ];
    ]
  in
  List.iteri
    (fun idx q ->
      Alcotest.check relation_testable
        (Printf.sprintf "Q%d(D) = fQ(Q%d)(fD(D))" idx idx)
        (Cq.eval db q)
        (Cq.eval fd (Single_rel.encode_cq enc q)))
    queries

(* ------------------------------------------------------------------ *)
(* Properties *)

let small_db_gen =
  QCheck2.Gen.(
    map
      (fun rows ->
        Database.of_list schema
          [ ("E", Relation.of_tuples (List.map (fun (a, b) -> Tuple.of_ints [ a; b ]) rows)) ])
      (list_size (int_bound 6) (pair (int_bound 3) (int_bound 3))))

let prop_efo_fo_equiv =
  QCheck2.Test.make ~name:"∃FO⁺ DNF expansion agrees with FO semantics" ~count:60 small_db_gen
    (fun d ->
      let f =
        Efo.Or
          ( Efo.And (Efo.Atom (Atom.make "E" [ v "x"; v "y" ]), Efo.Neq (v "x", i 0)),
            Efo.And (Efo.Atom (Atom.make "E" [ v "y"; v "x" ]), Efo.Eq (v "y", i 1)) )
      in
      let q = Efo.make ~head:[ v "x" ] f in
      Relation.equal (Efo.eval d q) (Fo.eval d (Fo.of_efo q)))

let prop_cq_monotone =
  QCheck2.Test.make ~name:"CQ evaluation is monotone" ~count:60
    QCheck2.Gen.(pair small_db_gen small_db_gen)
    (fun (d1, d2) ->
      let u = Database.union d1 d2 in
      let q =
        Cq.make ~head:[ v "x"; v "z" ]
          [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
      in
      Relation.subset (Cq.eval d1 q) (Cq.eval u q))

let prop_match_engine_naive_equiv =
  QCheck2.Test.make ~name:"greedy atom order agrees with naive order" ~count:60 small_db_gen
    (fun d ->
      let atoms = [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ] in
      let lookup r = try Database.relation d r with Not_found -> Relation.empty in
      let run naive =
        let out = ref [] in
        let (_ : bool) =
          Match_engine.solve ~lookup ~naive atoms (fun valn ->
              out := valn :: !out;
              false)
        in
        List.sort_uniq Valuation.compare !out
      in
      run true = run false)

let prop_containment_semantic =
  (* if the containment test says q1 ⊆ q2, evaluation agrees on random
     databases *)
  QCheck2.Test.make ~name:"syntactic containment implies semantic containment" ~count:60
    small_db_gen
    (fun d ->
      let q1 =
        Cq.make ~head:[ v "x" ]
          [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "x" ] ]
      in
      let q2 = Cq.make ~head:[ v "x" ] [ Atom.make "E" [ v "x"; v "y" ] ] in
      (not (Cq.contained_in schema q1 q2)) || Relation.subset (Cq.eval d q1) (Cq.eval d q2))

let prop_ralgebra_ucq_equiv =
  QCheck2.Test.make ~name:"positive algebra ≡ its UCQ compilation" ~count:60 small_db_gen
    (fun d ->
      let exprs =
        [
          Ralgebra.Rel "E";
          Ralgebra.Select ([ Ralgebra.Col_eq_col (0, 1) ], Ralgebra.Rel "E");
          Ralgebra.Project ([ 1; 0 ], Ralgebra.Rel "E");
          Ralgebra.Union
            ( Ralgebra.Project ([ 0; 0 ], Ralgebra.Rel "E"),
              Ralgebra.Select ([ Ralgebra.Col_neq_const (0, Value.int 0) ], Ralgebra.Rel "E") );
          Ralgebra.Project
            ([ 0; 3 ], Ralgebra.Select ([ Ralgebra.Col_eq_col (1, 2) ], Ralgebra.Product (Ralgebra.Rel "E", Ralgebra.Rel "E")));
        ]
      in
      List.for_all
        (fun e -> Relation.equal (Ralgebra.eval d e) (Ucq.eval d (Ralgebra.to_ucq schema e)))
        exprs)

let prop_minimize_equivalent =
  QCheck2.Test.make ~name:"minimization preserves semantics" ~count:60 small_db_gen (fun d ->
      let qs =
        [
          Cq.make ~head:[ v "x" ]
            [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "x"; v "z" ];
              Atom.make "E" [ v "z"; v "w" ] ];
          Cq.make ~head:[ v "x"; v "y" ]
            [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "x"; v "y" ] ];
        ]
      in
      List.for_all
        (fun q -> Relation.equal (Cq.eval d q) (Cq.eval d (Cq.minimize schema q)))
        qs)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_efo_fo_equiv; prop_cq_monotone; prop_match_engine_naive_equiv;
      prop_containment_semantic; prop_ralgebra_ucq_equiv; prop_minimize_equivalent ]

let () =
  Alcotest.run "query"
    [
      ( "cq",
        [
          Alcotest.test_case "single atom" `Quick test_cq_single_atom;
          Alcotest.test_case "join" `Quick test_cq_join;
          Alcotest.test_case "constants" `Quick test_cq_constants;
          Alcotest.test_case "equalities" `Quick test_cq_eqs;
          Alcotest.test_case "inequalities" `Quick test_cq_neqs;
          Alcotest.test_case "boolean" `Quick test_cq_boolean;
          Alcotest.test_case "contradictions" `Quick test_cq_contradiction;
          Alcotest.test_case "unsafe" `Quick test_cq_unsafe;
          Alcotest.test_case "repeated variable" `Quick test_cq_repeated_var;
        ] );
      ( "satisfiability",
        [
          Alcotest.test_case "basic" `Quick test_cq_satisfiable;
          Alcotest.test_case "finite domains" `Quick test_cq_satisfiable_finite_domain;
        ] );
      ( "containment",
        [
          Alcotest.test_case "chandra-merlin" `Quick test_cq_containment;
          Alcotest.test_case "redundant atom" `Quick test_cq_containment_redundant_atom;
        ] );
      ( "tableau",
        [
          Alcotest.test_case "roundtrip" `Quick test_tableau_roundtrip;
          Alcotest.test_case "instantiate" `Quick test_tableau_instantiate;
        ] );
      ( "ucq",
        [
          Alcotest.test_case "union" `Quick test_ucq_union;
          Alcotest.test_case "arity mismatch" `Quick test_ucq_arity_mismatch;
          Alcotest.test_case "containment" `Quick test_ucq_containment;
        ] );
      ( "efo",
        [
          Alcotest.test_case "dnf" `Quick test_efo_dnf;
          Alcotest.test_case "shadowing" `Quick test_efo_shadowing;
          Alcotest.test_case "of_cq" `Quick test_efo_of_cq_preserves;
        ] );
      ( "fo",
        [
          Alcotest.test_case "negation" `Quick test_fo_negation;
          Alcotest.test_case "universal" `Quick test_fo_universal;
          Alcotest.test_case "free variables" `Quick test_fo_free_var_check;
          Alcotest.test_case "of_cq" `Quick test_fo_of_cq_agrees;
        ] );
      ( "minimization",
        [
          Alcotest.test_case "redundant atom" `Quick test_minimize_redundant_atom;
          Alcotest.test_case "core kept" `Quick test_minimize_keeps_core;
          Alcotest.test_case "constant folding" `Quick test_minimize_folds_constants;
          Alcotest.test_case "inequalities untouched" `Quick test_minimize_neqs_untouched;
        ] );
      ( "relational algebra",
        [
          Alcotest.test_case "select/project" `Quick test_ralgebra_eval;
          Alcotest.test_case "product/union/diff" `Quick test_ralgebra_product_union_diff;
          Alcotest.test_case "arity checks" `Quick test_ralgebra_arity_checks;
          Alcotest.test_case "to_ucq" `Quick test_ralgebra_to_ucq;
        ] );
      ( "single-relation (Lemma 3.2)",
        [ Alcotest.test_case "lemma" `Quick test_single_rel_lemma ] );
      ("properties", properties);
    ]
