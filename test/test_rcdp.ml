(* Tests for the RCDP decider (Section 3): the paper's worked
   examples, the C1–C4 characterisations, the Corollary 3.4 IND fast
   path, agreement with the bounded brute-force extension search, and
   the Theorem 3.1 undecidability guards. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let v = Term.var
let s = Term.str

let schema =
  Schema.make
    [
      Schema.relation "Supt"
        [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ];
      Schema.relation "Flag"
        [ Schema.attribute "node"; Schema.attribute ~dom:Domain.boolean "bit" ];
    ]

let master_schema =
  Schema.make [ Schema.relation "MCust" [ Schema.attribute "cid" ] ]

let master ids =
  Database.of_list master_schema
    [ ("MCust", Relation.of_tuples (List.map (fun c -> Tuple.of_strs [ c ]) ids)) ]

let supt rows = Database.of_list schema [ ("Supt", Relation.of_str_rows rows) ]

(* φ1 of Example 2.1: an employee supports at most k customers. *)
let support_load k =
  let atoms =
    List.init (k + 1) (fun i ->
        Atom.make "Supt" [ v "e"; v (Printf.sprintf "d%d" i); v (Printf.sprintf "c%d" i) ])
  in
  let neqs =
    List.concat
      (List.init (k + 1) (fun i ->
           List.filter_map
             (fun j ->
               if j > i then Some (v (Printf.sprintf "c%d" i), v (Printf.sprintf "c%d" j))
               else None)
             (List.init (k + 1) (fun j -> j))))
  in
  Containment.make ~name:"phi1"
    (Lang.Q_cq (Cq.make ~neqs ~head:(v "e" :: List.init (k + 1) (fun i -> v (Printf.sprintf "c%d" i))) atoms))
    Projection.Empty

(* Q2 of Example 1.1: customers supported by e0. *)
let q2 = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ s "e0"; v "d"; v "c" ] ]

let decide ?(ccs = []) db q =
  Rcdp.decide ~schema ~master:(master []) ~ccs ~db (Lang.Q_cq q)

let check_complete name expected verdict =
  let got =
    match verdict with
    | Rcdp.Complete -> true
    | Rcdp.Incomplete _ -> false
  in
  Alcotest.(check bool) name expected got

(* ------------------------------------------------------------------ *)
(* Example 2.2: the k-customers cap *)

let test_example_2_2_full () =
  let db = supt (List.init 3 (fun i -> [ "e0"; "d0"; Printf.sprintf "c%d" i ])) in
  check_complete "k answers ⇒ complete" true (decide ~ccs:[ support_load 3 ] db q2)

let test_example_2_2_partial () =
  let db = supt (List.init 2 (fun i -> [ "e0"; "d0"; Printf.sprintf "c%d" i ])) in
  match decide ~ccs:[ support_load 3 ] db q2 with
  | Rcdp.Complete -> Alcotest.fail "k−1 answers must be incomplete"
  | Rcdp.Incomplete cex ->
    (* the counterexample adds a fresh customer for e0 *)
    Alcotest.(check bool) "extension touches Supt" true
      (not (Relation.is_empty (Database.relation cex.Rcdp.cex_extension "Supt")))

let test_example_2_2_other_employee () =
  (* tuples of other employees do not count against e0's cap *)
  let db =
    supt
      ([ [ "e1"; "d1"; "x0" ]; [ "e1"; "d1"; "x1" ]; [ "e1"; "d1"; "x2" ] ]
      @ List.init 3 (fun i -> [ "e0"; "d0"; Printf.sprintf "c%d" i ]))
  in
  check_complete "cap is per employee" true (decide ~ccs:[ support_load 3 ] db q2)

(* FD eid → dept, cid (Example 1.1): nonempty answer ⇒ complete. *)
let fd_full = Fd.make ~name:"fd_full" ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1; 2 ] ()
let ccs_fd_full = Translate.of_fd schema fd_full

let test_fd_nonempty_complete () =
  let db = supt [ [ "e0"; "d0"; "c0" ] ] in
  check_complete "FD pins the only possible tuple" true (decide ~ccs:ccs_fd_full db q2)

let test_fd_empty_incomplete () =
  let db = supt [ [ "e1"; "d1"; "c1" ] ] in
  check_complete "no e0 tuple yet" false (decide ~ccs:ccs_fd_full db q2)

(* ------------------------------------------------------------------ *)
(* Master-data-bounded completeness (condition C2 through a real
   projection) *)

let supported =
  (* supported customers are bounded by master customers *)
  Containment.make ~name:"bound"
    (Lang.Q_cq (Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ v "e"; v "d"; v "c" ] ]))
    (Projection.proj "MCust" [ 0 ])

let test_master_bound_complete () =
  let m = master [ "c0"; "c1" ] in
  let db = supt [ [ "e0"; "d0"; "c0" ]; [ "e0"; "d0"; "c1" ] ] in
  check_complete "all master customers present" true
    (Rcdp.decide ~schema ~master:m ~ccs:[ supported ] ~db (Lang.Q_cq q2))

let test_master_bound_incomplete () =
  let m = master [ "c0"; "c1" ] in
  let db = supt [ [ "e0"; "d0"; "c0" ] ] in
  match Rcdp.decide ~schema ~master:m ~ccs:[ supported ] ~db (Lang.Q_cq q2) with
  | Rcdp.Complete -> Alcotest.fail "c1 is still missing"
  | Rcdp.Incomplete cex ->
    Alcotest.(check bool) "the missing answer is c1" true
      (Tuple.equal cex.Rcdp.cex_answer (Tuple.of_strs [ "c1" ]))

let test_not_partially_closed_rejected () =
  let m = master [ "c0" ] in
  let db = supt [ [ "e0"; "d0"; "c9" ] ] in
  Alcotest.(check bool) "precondition enforced" true
    (try
       ignore (Rcdp.decide ~schema ~master:m ~ccs:[ supported ] ~db (Lang.Q_cq q2));
       false
     with Rcdp.Not_partially_closed _ -> true)

(* ------------------------------------------------------------------ *)
(* No constraints: only finite-domain outputs can be complete *)

let test_no_ccs_infinite_output () =
  let db = supt [ [ "e0"; "d0"; "c0" ] ] in
  check_complete "open world, infinite output" false (decide db q2)

let test_no_ccs_finite_output () =
  (* all bits are present: the Boolean column cannot grow *)
  let db =
    Database.of_list schema
      [ ("Flag", Relation.of_int_rows [ [ 0; 0 ]; [ 0; 1 ] ]) ]
  in
  let q = Cq.make ~head:[ v "b" ] [ Atom.make "Flag" [ v "n"; v "b" ] ] in
  check_complete "finite output saturated" true (decide db q)

let test_no_ccs_finite_output_missing () =
  let db = Database.of_list schema [ ("Flag", Relation.of_int_rows [ [ 0; 0 ] ]) ] in
  let q = Cq.make ~head:[ v "b" ] [ Atom.make "Flag" [ v "n"; v "b" ] ] in
  check_complete "bit 1 still missing" false (decide db q)

let test_unsatisfiable_query_complete () =
  let q =
    Cq.make
      ~eqs:[ (v "d", s "a"); (v "d", s "b") ]
      ~head:[ v "c" ]
      [ Atom.make "Supt" [ v "e"; v "d"; v "c" ] ]
  in
  check_complete "unsatisfiable query" true (decide (supt []) q)

(* ------------------------------------------------------------------ *)
(* UCQ and ∃FO⁺ *)

let test_ucq_one_disjunct_unbounded () =
  let qa = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ s "e0"; v "d"; v "c" ] ] in
  let qb = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ s "e1"; v "d"; v "c" ] ] in
  let db = supt [ [ "e0"; "d0"; "c0" ] ] in
  (* e0 is capped at 1 and saturated, but e1 is open *)
  let verdict =
    Rcdp.decide ~schema ~master:(master []) ~ccs:[ support_load 1 ] ~db
      (Lang.Q_ucq (Ucq.make [ qa; qb ]))
  in
  (match verdict with
   | Rcdp.Complete -> Alcotest.fail "the e1 disjunct is open"
   | Rcdp.Incomplete cex ->
     Alcotest.(check int) "blame the second disjunct" 1 cex.Rcdp.cex_disjunct)

let test_efo_routes_through_ucq () =
  let f =
    Efo.Or
      ( Efo.Atom (Atom.make "Supt" [ s "e0"; v "d"; v "c" ]),
        Efo.Atom (Atom.make "Supt" [ s "e1"; v "d"; v "c" ]) )
  in
  let q = Efo.make ~head:[ v "c" ] f in
  let db = supt [ [ "e0"; "d0"; "c0" ]; [ "e1"; "d0"; "c0" ] ] in
  let verdict =
    Rcdp.decide ~schema ~master:(master []) ~ccs:[ support_load 1 ] ~db (Lang.Q_efo q)
  in
  check_complete "both employees saturated at k=1" true verdict

(* ------------------------------------------------------------------ *)
(* Corollary 3.4: the IND fast path agrees with the generic decider *)

let ind_supported = Ind.make ~name:"i" ~rel:"Supt" ~cols:[ 2 ] (Projection.proj "MCust" [ 0 ])

let test_ind_fast_path_agrees () =
  let m = master [ "c0"; "c1"; "c2" ] in
  List.iter
    (fun rows ->
      let db = supt rows in
      let generic =
        Rcdp.decide ~schema ~master:m ~ccs:[ Ind.to_cc schema ind_supported ] ~db
          (Lang.Q_cq q2)
      in
      let fast =
        Rcdp.decide_ind ~schema ~master:m ~inds:[ ind_supported ] ~db (Lang.Q_cq q2)
      in
      Alcotest.(check bool)
        (Printf.sprintf "C2 = C3 on %d rows" (List.length rows))
        (generic = Rcdp.Complete) (fast = Rcdp.Complete))
    [
      [];
      [ [ "e0"; "d0"; "c0" ] ];
      [ [ "e0"; "d0"; "c0" ]; [ "e0"; "d1"; "c1" ]; [ "e0"; "d0"; "c2" ] ];
      [ [ "e1"; "d0"; "c0" ] ];
    ]

(* ------------------------------------------------------------------ *)
(* Agreement with the bounded brute-force search *)

let test_agrees_with_semi_decide () =
  let m = master [ "c0"; "c1" ] in
  List.iter
    (fun rows ->
      let db = supt rows in
      let exact = Rcdp.decide ~schema ~master:m ~ccs:[ supported ] ~db (Lang.Q_cq q2) in
      let semi =
        Rcdp.semi_decide ~max_tuples:1 ~schema ~master:m ~ccs:[ supported ] ~db
          (Lang.Q_cq q2)
      in
      match exact, semi with
      | Rcdp.Complete, Rcdp.Refuted _ ->
        Alcotest.fail "semi refuted a database the exact decider accepted"
      | Rcdp.Incomplete _, Rcdp.No_counterexample _ ->
        Alcotest.fail "semi missed a single-tuple counterexample"
      | _ -> ())
    [ []; [ [ "e0"; "d0"; "c0" ] ]; [ [ "e0"; "d0"; "c0" ]; [ "e0"; "d0"; "c1" ] ] ]

(* ------------------------------------------------------------------ *)
(* Theorem 3.1 guards *)

let test_fo_query_unsupported () =
  let q = Fo.boolean (Fo.Exists ([ "x" ], Fo.Atom (Atom.make "MCust" [ v "x" ]))) in
  Alcotest.(check bool) "FO raises" true
    (try
       ignore (decide (supt []) q2 |> ignore;
               Rcdp.decide ~schema ~master:(master []) ~ccs:[] ~db:(supt []) (Lang.Q_fo q));
       false
     with Rcdp.Unsupported _ -> true)

let test_fo_cc_unsupported () =
  let fo_cc =
    Containment.make
      (Lang.Q_fo (Fo.make ~head:[ v "x" ] (Fo.Exists ([ "d"; "c" ], Fo.Atom (Atom.make "Supt" [ v "x"; v "d"; v "c" ])))))
      Projection.Empty
  in
  Alcotest.(check bool) "FO CC raises" true
    (try
       ignore (Rcdp.decide ~schema ~master:(master []) ~ccs:[ fo_cc ] ~db:(supt []) (Lang.Q_cq q2));
       false
     with Rcdp.Unsupported _ -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

let rows_gen =
  QCheck2.Gen.(
    list_size (int_bound 4)
      (map
         (fun (e, d, c) ->
           [ Printf.sprintf "e%d" e; Printf.sprintf "d%d" d; Printf.sprintf "c%d" c ])
         (triple (int_bound 1) (int_bound 1) (int_bound 2))))

let prop_complete_stable_under_cap_growth =
  (* a larger cap admits every extension the smaller cap admits, so
     completeness under the larger cap implies completeness under the
     smaller one (when the database satisfies both) *)
  QCheck2.Test.make ~name:"smaller caps only shrink the extension space" ~count:30 rows_gen
    (fun rows ->
      let db = supt rows in
      let closed k =
        Containment.holds_all ~db ~master:(master []) [ support_load k ]
      in
      if not (closed 2 && closed 3) then true
      else
        let verdict k = decide ~ccs:[ support_load k ] db q2 = Rcdp.Complete in
        (not (verdict 3)) || verdict 2)

let prop_counterexample_is_real =
  (* every counterexample really is a partially closed extension with a
     new answer *)
  QCheck2.Test.make ~name:"counterexamples verify" ~count:40 rows_gen (fun rows ->
      let db = supt rows in
      let m = master [ "c0"; "c1" ] in
      if not (Containment.holds_all ~db ~master:m [ supported ]) then true
      else
        match Rcdp.decide ~schema ~master:m ~ccs:[ supported ] ~db (Lang.Q_cq q2) with
        | Rcdp.Complete -> true
        | Rcdp.Incomplete cex ->
          let extended = Database.union db cex.Rcdp.cex_extension in
          Containment.holds_all ~db:extended ~master:m [ supported ]
          && Relation.mem cex.Rcdp.cex_answer (Cq.eval extended q2)
          && not (Relation.mem cex.Rcdp.cex_answer (Cq.eval db q2)))

let prop_ind_fast_path =
  QCheck2.Test.make ~name:"Corollary 3.4: C3 ≡ C2 for INDs" ~count:40 rows_gen (fun rows ->
      let db = supt rows in
      let m = master [ "c0"; "c1"; "c2" ] in
      let cc = Ind.to_cc schema ind_supported in
      if not (Containment.holds_all ~db ~master:m [ cc ]) then true
      else
        let generic = Rcdp.decide ~schema ~master:m ~ccs:[ cc ] ~db (Lang.Q_cq q2) in
        let fast = Rcdp.decide_ind ~schema ~master:m ~inds:[ ind_supported ] ~db (Lang.Q_cq q2) in
        (generic = Rcdp.Complete) = (fast = Rcdp.Complete))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_complete_stable_under_cap_growth; prop_counterexample_is_real; prop_ind_fast_path ]

let () =
  Alcotest.run "rcdp"
    [
      ( "example-2.2",
        [
          Alcotest.test_case "k answers complete" `Quick test_example_2_2_full;
          Alcotest.test_case "k−1 answers incomplete" `Quick test_example_2_2_partial;
          Alcotest.test_case "cap is per employee" `Quick test_example_2_2_other_employee;
        ] );
      ( "functional dependencies",
        [
          Alcotest.test_case "nonempty ⇒ complete" `Quick test_fd_nonempty_complete;
          Alcotest.test_case "empty ⇒ incomplete" `Quick test_fd_empty_incomplete;
        ] );
      ( "master bound",
        [
          Alcotest.test_case "saturated" `Quick test_master_bound_complete;
          Alcotest.test_case "missing customer" `Quick test_master_bound_incomplete;
          Alcotest.test_case "partially closed precondition" `Quick
            test_not_partially_closed_rejected;
        ] );
      ( "open world",
        [
          Alcotest.test_case "infinite output" `Quick test_no_ccs_infinite_output;
          Alcotest.test_case "finite output saturated" `Quick test_no_ccs_finite_output;
          Alcotest.test_case "finite output missing" `Quick test_no_ccs_finite_output_missing;
          Alcotest.test_case "unsatisfiable query" `Quick test_unsatisfiable_query_complete;
        ] );
      ( "ucq / efo",
        [
          Alcotest.test_case "disjunct blame" `Quick test_ucq_one_disjunct_unbounded;
          Alcotest.test_case "efo expansion" `Quick test_efo_routes_through_ucq;
        ] );
      ( "ind fast path",
        [ Alcotest.test_case "Corollary 3.4" `Quick test_ind_fast_path_agrees ] );
      ( "semi decide",
        [ Alcotest.test_case "agreement" `Quick test_agrees_with_semi_decide ] );
      ( "undecidable guards",
        [
          Alcotest.test_case "FO query" `Quick test_fo_query_unsupported;
          Alcotest.test_case "FO constraint" `Quick test_fo_cc_unsupported;
        ] );
      ("properties", properties);
    ]
