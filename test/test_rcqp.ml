(* Tests for the RCQP decider (Section 4): Example 4.1, conditions
   E1–E6, the IND case of Proposition 4.3, witness verification, and
   the Theorem 4.1 undecidability guards. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let v = Term.var
let s = Term.str

let schema =
  Schema.make
    [
      Schema.relation "Supt"
        [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ];
      Schema.relation "Flag"
        [ Schema.attribute "node"; Schema.attribute ~dom:Domain.boolean "bit" ];
    ]

let master_schema = Schema.make [ Schema.relation "MCust" [ Schema.attribute "cid" ] ]

let master ids =
  Database.of_list master_schema
    [ ("MCust", Relation.of_tuples (List.map (fun c -> Tuple.of_strs [ c ]) ids)) ]

let fd_dept = Translate.of_fd schema (Fd.make ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1 ] ())
let fd_full = Translate.of_fd schema (Fd.make ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1; 2 ] ())

let q2_customers = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ s "e0"; v "d"; v "c" ] ]
let q2_tuples = Cq.make ~head:[ s "e0"; v "d"; v "c" ] [ Atom.make "Supt" [ s "e0"; v "d"; v "c" ] ]
let q4 = Cq.make ~head:[ s "e0"; s "d0"; v "c" ] [ Atom.make "Supt" [ s "e0"; s "d0"; v "c" ] ]

let decide ?master:(m = master []) ccs q =
  Rcqp.decide ~schema ~master:m ~ccs (Lang.Q_cq q)

let name v = Rcqp.verdict_name v

(* ------------------------------------------------------------------ *)
(* Example 4.1 *)

let test_q4_fd_dept_nonempty () =
  (* D− = {(e0, d', c)} with d' ≠ d0 blocks every Q4 extension *)
  match decide fd_dept q4 with
  | Rcqp.Nonempty { witness = Some w; _ } ->
    Alcotest.(check bool) "witness verified complete" true
      (Rcdp.decide ~schema ~master:(master []) ~ccs:fd_dept ~db:w (Lang.Q_cq q4)
       = Rcdp.Complete)
  | verdict -> Alcotest.fail ("expected nonempty with witness, got " ^ name verdict)

let test_q2_fd_dept_empty () =
  (* cid is invisible to eid → dept: a fresh customer always slips in *)
  match decide fd_dept q2_tuples with
  | Rcqp.Empty _ -> ()
  | verdict -> Alcotest.fail ("expected empty, got " ^ name verdict)

let test_q2_fd_full_nonempty () =
  (* eid → dept, cid pins the single tuple D+ = {(e0, d0, c0)} *)
  match decide fd_full q2_tuples with
  | Rcqp.Nonempty _ -> ()
  | verdict -> Alcotest.fail ("expected nonempty, got " ^ name verdict)

let test_q2_head_c_fd_full_nonempty () =
  match decide fd_full q2_customers with
  | Rcqp.Nonempty _ -> ()
  | verdict -> Alcotest.fail ("expected nonempty, got " ^ name verdict)

(* ------------------------------------------------------------------ *)
(* E1/E5: finite-domain outputs *)

let test_finite_output_nonempty () =
  let q = Cq.make ~head:[ v "b" ] [ Atom.make "Flag" [ v "n"; v "b" ] ] in
  match decide [] q with
  | Rcqp.Nonempty { witness = Some w; _ } ->
    Alcotest.(check bool) "witness complete" true
      (Rcdp.decide ~schema ~master:(master []) ~ccs:[] ~db:w (Lang.Q_cq q) = Rcdp.Complete)
  | verdict -> Alcotest.fail ("expected nonempty via E1, got " ^ name verdict)

let test_no_ccs_infinite_output_empty () =
  (* Proposition 4.2 case V = ∅: an infinite output variable kills it *)
  match decide [] q2_customers with
  | Rcqp.Empty _ -> ()
  | verdict -> Alcotest.fail ("expected empty, got " ^ name verdict)

let test_unsatisfiable_query_nonempty () =
  let q =
    Cq.make
      ~eqs:[ (v "d", s "a"); (v "d", s "b") ]
      ~head:[ v "c" ]
      [ Atom.make "Supt" [ v "e"; v "d"; v "c" ] ]
  in
  match decide [] q with
  | Rcqp.Nonempty { witness = Some w; _ } ->
    Alcotest.(check bool) "empty witness" true (Database.is_empty w)
  | verdict -> Alcotest.fail ("expected nonempty, got " ^ name verdict)

(* ------------------------------------------------------------------ *)
(* The support-load cap: blockers via counting constraints *)

let support_load k =
  let atoms =
    List.init (k + 1) (fun i ->
        Atom.make "Supt" [ v "e"; v (Printf.sprintf "d%d" i); v (Printf.sprintf "c%d" i) ])
  in
  let neqs =
    List.concat
      (List.init (k + 1) (fun i ->
           List.filter_map
             (fun j ->
               if j > i then Some (v (Printf.sprintf "c%d" i), v (Printf.sprintf "c%d" j))
               else None)
             (List.init (k + 1) (fun j -> j))))
  in
  Containment.make ~name:"phi1"
    (Lang.Q_cq
       (Cq.make ~neqs
          ~head:(v "e" :: List.init (k + 1) (fun i -> v (Printf.sprintf "c%d" i)))
          atoms))
    Projection.Empty

let test_support_cap_nonempty () =
  (* with a cap of 1 a single-tuple database is complete for Q2 *)
  match decide [ support_load 1 ] q2_customers with
  | Rcqp.Nonempty _ -> ()
  | verdict -> Alcotest.fail ("expected nonempty, got " ^ name verdict)

(* ------------------------------------------------------------------ *)
(* Proposition 4.3: the IND case *)

let ind_supported = Ind.make ~rel:"Supt" ~cols:[ 2 ] (Projection.proj "MCust" [ 0 ])
let decide_ind ?master:(m = master [ "c0"; "c1" ]) inds q =
  Rcqp.decide_ind ~schema ~master:m ~inds (Lang.Q_cq q)

let test_ind_bounded () =
  (* cid is covered by the IND: E4 holds, and dept is... dept is
     unbounded!  Q2 on full tuples must be empty, Q2 on customers
     nonempty. *)
  (match decide_ind [ ind_supported ] q2_customers with
   | Rcqp.Nonempty { witness = Some w; _ } ->
     Alcotest.(check bool) "witness complete" true
       (Rcdp.decide_ind ~schema ~master:(master [ "c0"; "c1" ]) ~inds:[ ind_supported ]
          ~db:w (Lang.Q_cq q2_customers)
        = Rcdp.Complete)
   | verdict -> Alcotest.fail ("expected nonempty, got " ^ name verdict));
  match decide_ind [ ind_supported ] q2_tuples with
  | Rcqp.Empty _ -> ()
  | verdict -> Alcotest.fail ("expected empty (dept uncovered), got " ^ name verdict)

let test_ind_no_valid_valuation () =
  (* empty master: no Supt tuple can exist at all, so the empty
     database is complete (the escape clause) *)
  match decide_ind ~master:(master []) [ ind_supported ] q2_customers with
  | Rcqp.Nonempty { witness = Some w; _ } ->
    Alcotest.(check bool) "empty witness" true (Database.is_empty w)
  | verdict -> Alcotest.fail ("expected nonempty via escape clause, got " ^ name verdict)

let test_ind_matches_generic () =
  (* the IND decider and the generic decider agree when both conclude *)
  List.iter
    (fun (inds, q) ->
      let ind_verdict = decide_ind inds q in
      let ccs = List.map (Ind.to_cc schema) inds in
      let generic = Rcqp.decide ~schema ~master:(master [ "c0"; "c1" ]) ~ccs (Lang.Q_cq q) in
      match ind_verdict, generic with
      | Rcqp.Nonempty _, Rcqp.Empty _ | Rcqp.Empty _, Rcqp.Nonempty _ ->
        Alcotest.fail "IND and generic deciders disagree"
      | _ -> ())
    [
      ([ ind_supported ], q2_customers);
      ([ ind_supported ], q2_tuples);
      ([], q2_customers);
    ]

(* ------------------------------------------------------------------ *)
(* Theorem 4.1 guards *)

let test_fp_query_unsupported () =
  let p = Datalog.transitive_closure ~edge:"Supt" ~out:"tc" in
  Alcotest.(check bool) "FP raises" true
    (try
       ignore (Rcqp.decide ~schema ~master:(master []) ~ccs:[] (Lang.Q_fp p));
       false
     with Rcqp.Unsupported _ -> true)

let test_fo_cc_unsupported () =
  let fo_cc =
    Containment.make
      (Lang.Q_fo
         (Fo.make ~head:[ v "x" ]
            (Fo.Exists ([ "d"; "c" ], Fo.Atom (Atom.make "Supt" [ v "x"; v "d"; v "c" ])))))
      Projection.Empty
  in
  Alcotest.(check bool) "FO CC raises" true
    (try
       ignore (Rcqp.decide ~schema ~master:(master []) ~ccs:[ fo_cc ] (Lang.Q_cq q2_customers));
       false
     with Rcqp.Unsupported _ -> true)

(* ------------------------------------------------------------------ *)
(* Semi-decision for the undecidable rows *)

let test_semi_decide_finds_witness () =
  let fo_cc =
    (* FO constraint: there is at most one Supt tuple (a denial
       expressed with negation, just to exercise the FO path) *)
    Containment.make
      (Lang.Q_fo
         (Fo.make
            ~head:[ v "e"; v "d"; v "c"; v "e'"; v "d'"; v "c'" ]
            (Fo.And
               ( Fo.Atom (Atom.make "Supt" [ v "e"; v "d"; v "c" ]),
                 Fo.And
                   ( Fo.Atom (Atom.make "Supt" [ v "e'"; v "d'"; v "c'" ]),
                     Fo.neq (v "c") (v "c'") ) ))))
      Projection.Empty
  in
  match
    Rcqp.semi_decide ~max_tuples:1 ~schema ~master:(master []) ~ccs:[ fo_cc ]
      (Lang.Q_cq q2_customers)
  with
  | Rcqp.Plausibly_nonempty _ -> ()
  | Rcqp.No_witness_found _ -> Alcotest.fail "a single-tuple witness exists"

(* ------------------------------------------------------------------ *)
(* Brute-force cross-check: Nonempty must have a small witness when
   the universe is small; Empty must have none. *)

let brute_force_has_witness ~values ~max_tuples ccs q =
  let m = master [] in
  let tuples =
    List.concat_map
      (fun e -> List.concat_map (fun d -> List.map (fun c -> [ e; d; c ]) values) values)
      values
  in
  let candidates = List.map (fun r -> Tuple.of_strs r) tuples in
  let rec grow start db count =
    (Containment.holds_all ~db ~master:m ccs
     && Rcdp.decide ~schema ~master:m ~ccs ~db (Lang.Q_cq q) = Rcdp.Complete)
    ||
    (count < max_tuples
     && List.exists
          (fun i ->
            let t = List.nth candidates i in
            (not (Relation.mem t (Database.relation db "Supt")))
            && grow i (Database.add_tuple db "Supt" t) (count + 1))
          (List.init (List.length candidates) (fun i -> i) |> List.filter (fun i -> i >= start)))
  in
  grow 0 (Database.empty schema) 0

let test_brute_force_agreement () =
  (* Q4 with fd_dept: decider says nonempty; brute force over a tiny
     universe must find a witness too *)
  Alcotest.(check bool) "brute force finds Q4 witness" true
    (brute_force_has_witness ~values:[ "e0"; "d0"; "d1" ] ~max_tuples:1 fd_dept q4);
  (* Q2 with fd_dept: empty per the decider; no 1-tuple blocker exists
     over any universe (sanity: brute force with tiny universe fails) *)
  Alcotest.(check bool) "brute force finds no Q2 witness" false
    (brute_force_has_witness ~values:[ "e0"; "d0"; "c0" ] ~max_tuples:1 fd_dept q2_tuples)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_witnesses_verify =
  (* whenever the decider returns a witness it really is complete *)
  QCheck2.Test.make ~name:"RCQP witnesses verify" ~count:8
    QCheck2.Gen.(int_bound 2)
    (fun k ->
      let q = q2_customers in
      match decide [ support_load (k + 1) ] q with
      | Rcqp.Nonempty { witness = Some w; _ } ->
        Containment.holds_all ~db:w ~master:(master []) [ support_load (k + 1) ]
        && Rcdp.decide ~schema ~master:(master []) ~ccs:[ support_load (k + 1) ] ~db:w
             (Lang.Q_cq q)
           = Rcdp.Complete
      | Rcqp.Nonempty { witness = None; _ } | Rcqp.Empty _ | Rcqp.Unknown _ -> true)

let properties = List.map QCheck_alcotest.to_alcotest [ prop_witnesses_verify ]

let () =
  Alcotest.run "rcqp"
    [
      ( "example-4.1",
        [
          Alcotest.test_case "Q4 / eid→dept nonempty" `Quick test_q4_fd_dept_nonempty;
          Alcotest.test_case "Q2 / eid→dept empty" `Quick test_q2_fd_dept_empty;
          Alcotest.test_case "Q2 / eid→dept,cid nonempty" `Quick test_q2_fd_full_nonempty;
          Alcotest.test_case "Q2 head-c variant" `Quick test_q2_head_c_fd_full_nonempty;
        ] );
      ( "e1-e5",
        [
          Alcotest.test_case "finite output" `Quick test_finite_output_nonempty;
          Alcotest.test_case "no CCs, infinite output" `Quick test_no_ccs_infinite_output_empty;
          Alcotest.test_case "unsatisfiable query" `Quick test_unsatisfiable_query_nonempty;
        ] );
      ( "counting blockers",
        [ Alcotest.test_case "support cap" `Quick test_support_cap_nonempty ] );
      ( "prop-4.3 (INDs)",
        [
          Alcotest.test_case "covered vs uncovered" `Quick test_ind_bounded;
          Alcotest.test_case "escape clause" `Quick test_ind_no_valid_valuation;
          Alcotest.test_case "matches generic decider" `Quick test_ind_matches_generic;
        ] );
      ( "undecidable guards",
        [
          Alcotest.test_case "FP query" `Quick test_fp_query_unsupported;
          Alcotest.test_case "FO constraint" `Quick test_fo_cc_unsupported;
        ] );
      ( "semi decide",
        [ Alcotest.test_case "finds FO witness" `Quick test_semi_decide_finds_witness ] );
      ( "brute force",
        [ Alcotest.test_case "agreement" `Quick test_brute_force_agreement ] );
      ("properties", properties);
    ]
