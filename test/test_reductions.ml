(* Tests for the executable hardness constructions: the propositional
   machinery, Theorem 3.6's ∀∃3SAT → RCDP reduction, Theorem 4.5(1)'s
   3SAT → RCQP reduction, the 2-head DFA machinery behind the
   undecidability proofs, and the Theorem 4.5(2) tiling reduction. *)

open Ric_complete
open Ric_reductions

(* ------------------------------------------------------------------ *)
(* Propositional oracles *)

let l ?neg var = Sat.lit ?neg var

let test_sat_solver () =
  let sat = { Sat.n_vars = 2; clauses = [ (l 0, l 0, l 1) ] } in
  Alcotest.(check bool) "satisfiable" true (Sat.satisfiable sat);
  let unsat =
    { Sat.n_vars = 1; clauses = [ (l 0, l 0, l 0); (l ~neg:true 0, l ~neg:true 0, l ~neg:true 0) ] }
  in
  Alcotest.(check bool) "unsatisfiable" false (Sat.satisfiable unsat);
  let empty = { Sat.n_vars = 0; clauses = [] } in
  Alcotest.(check bool) "empty cnf" true (Sat.satisfiable empty)

let test_fe_eval () =
  (* ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y): y := ¬x works — true *)
  let fe = Sat.make_fe ~n_forall:1 ~n_exists:1 [ (l 0, l 0, l 1); (l ~neg:true 0, l ~neg:true 0, l ~neg:true 1) ] in
  Alcotest.(check bool) "∀x∃y xor-ish" true (Sat.eval_fe fe);
  (* ∀x (x): false *)
  let fe2 = Sat.make_fe ~n_forall:1 ~n_exists:0 [ (l 0, l 0, l 0) ] in
  Alcotest.(check bool) "∀x x" false (Sat.eval_fe fe2);
  (* ∃y (y): true *)
  let fe3 = Sat.make_fe ~n_forall:0 ~n_exists:1 [ (l 0, l 0, l 0) ] in
  Alcotest.(check bool) "∃y y" true (Sat.eval_fe fe3)

let test_efe_eval () =
  (* ∃x ∀y ∃z (x) ∧ (y ∨ z) — pick x = 1, z = 1: true *)
  let e =
    Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
      [ (l 0, l 0, l 0); (l 1, l 1, l 2) ]
  in
  Alcotest.(check bool) "efe true" true (Sat.eval_efe e);
  (* ∃x ∀y (y): false *)
  let e2 = Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:0 [ (l 1, l 1, l 1) ] in
  Alcotest.(check bool) "efe false" false (Sat.eval_efe e2)

(* ------------------------------------------------------------------ *)
(* Theorem 3.6: ∀∃3SAT → RCDP(CQ, INDs) *)

let check_rcdp_reduction name fe =
  let inst = Rcdp_hardness.of_fe fe in
  Alcotest.(check bool) name (Rcdp_hardness.expected fe) (Rcdp_hardness.decide inst)

let test_rcdp_reduction_true () =
  (* ∀x ∃y (x ∨ y)(¬x ∨ ¬y): true *)
  check_rcdp_reduction "true instance"
    (Sat.make_fe ~n_forall:1 ~n_exists:1
       [ (l 0, l 0, l 1); (l ~neg:true 0, l ~neg:true 0, l ~neg:true 1) ])

let test_rcdp_reduction_false () =
  (* ∀x (x): false *)
  check_rcdp_reduction "false instance" (Sat.make_fe ~n_forall:1 ~n_exists:0 [ (l 0, l 0, l 0) ]);
  (* ∀x∀x' ∃y (x ∧ y)-ish unsatisfiable for x = 0 *)
  check_rcdp_reduction "false instance 2"
    (Sat.make_fe ~n_forall:2 ~n_exists:1 [ (l 0, l 1, l 1); (l ~neg:true 2, l ~neg:true 2, l ~neg:true 2); (l 2, l 2, l 2) ])

let test_rcdp_reduction_random () =
  List.iter
    (fun seed ->
      let fe = Sat.random_fe ~seed ~n_forall:2 ~n_exists:2 ~n_clauses:4 in
      check_rcdp_reduction (Printf.sprintf "random seed %d" seed) fe)
    [ 11; 22; 33; 44; 55; 66 ]

let test_rcdp_reduction_ind_fast_agrees () =
  List.iter
    (fun seed ->
      let fe = Sat.random_fe ~seed ~n_forall:2 ~n_exists:1 ~n_clauses:3 in
      let inst = Rcdp_hardness.of_fe fe in
      Alcotest.(check bool)
        (Printf.sprintf "C3 = C2 on seed %d" seed)
        (Rcdp_hardness.decide ~ind_fast:true inst)
        (Rcdp_hardness.decide ~ind_fast:false inst))
    [ 7; 8 ]

(* ------------------------------------------------------------------ *)
(* Theorem 4.5(1): 3SAT → RCQP(CQ, INDs) *)

let check_rcqp_reduction name cnf =
  let inst = Rcqp_hardness.of_cnf cnf in
  Alcotest.(check bool) name (Rcqp_hardness.expected_nonempty cnf) (Rcqp_hardness.decide inst)

let test_rcqp_reduction_sat () =
  check_rcqp_reduction "satisfiable ⇒ RCQ empty"
    { Sat.n_vars = 2; clauses = [ (l 0, l 1, l 1) ] }

let test_rcqp_reduction_unsat () =
  check_rcqp_reduction "unsatisfiable ⇒ RCQ nonempty"
    {
      Sat.n_vars = 1;
      clauses = [ (l 0, l 0, l 0); (l ~neg:true 0, l ~neg:true 0, l ~neg:true 0) ];
    }

let test_rcqp_reduction_random () =
  List.iter
    (fun seed ->
      let cnf = Sat.random_cnf ~seed ~n_vars:3 ~n_clauses:5 in
      check_rcqp_reduction (Printf.sprintf "random seed %d" seed) cnf)
    [ 3; 14; 15; 92; 65 ]

(* ------------------------------------------------------------------ *)
(* 2-head DFAs *)

let test_dfa_simulation () =
  let a = Two_head_dfa.accepts_one in
  Alcotest.(check bool) "accepts 1" true (Two_head_dfa.accepts a [ true ]);
  Alcotest.(check bool) "rejects 0" false (Two_head_dfa.accepts a [ false ]);
  Alcotest.(check bool) "rejects 11" false (Two_head_dfa.accepts a [ true; true ]);
  Alcotest.(check bool) "rejects ε" false (Two_head_dfa.accepts a [])

let test_dfa_equal_heads () =
  let a = Two_head_dfa.equal_heads in
  Alcotest.(check bool) "accepts ε" true (Two_head_dfa.accepts a []);
  Alcotest.(check bool) "accepts 111" true (Two_head_dfa.accepts a [ true; true; true ]);
  Alcotest.(check bool) "rejects 101" false (Two_head_dfa.accepts a [ true; false; true ])

let test_dfa_emptiness () =
  Alcotest.(check bool) "nothing is empty" true
    (Two_head_dfa.empty_up_to Two_head_dfa.accepts_nothing ~max_len:4);
  Alcotest.(check bool) "accepts_one is nonempty" false
    (Two_head_dfa.empty_up_to Two_head_dfa.accepts_one ~max_len:4);
  (match Two_head_dfa.shortest_accepted Two_head_dfa.accepts_one ~max_len:4 with
   | Some [ true ] -> ()
   | _ -> Alcotest.fail "shortest accepted string should be \"1\"")

(* ------------------------------------------------------------------ *)
(* Theorem 3.1(3): the datalog encoding agrees with the simulator *)

let test_dfa_datalog_agrees () =
  List.iter
    (fun a ->
      let t = Dfa_reduction.of_dfa a in
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "agree on %s"
               (String.concat "" (List.map (fun b -> if b then "1" else "0") w)))
            (Two_head_dfa.accepts a w)
            (Dfa_reduction.accepts_via_datalog t w))
        [ []; [ true ]; [ false ]; [ true; true ]; [ true; false ]; [ false; true ] ])
    [ Two_head_dfa.accepts_one; Two_head_dfa.accepts_nothing; Two_head_dfa.equal_heads ]

let test_dfa_encoding_well_formed () =
  let t = Dfa_reduction.of_dfa Two_head_dfa.accepts_one in
  let enc = Dfa_reduction.encode_string t [ true; false; true ] in
  Alcotest.(check bool) "encoding satisfies V1–V3" true
    (Ric_constraints.Containment.holds_all ~db:enc ~master:t.Dfa_reduction.master
       t.Dfa_reduction.ccs)

let test_dfa_semi_decision () =
  (* a machine accepting a short string: the bounded search refutes
     completeness of the empty database *)
  let t1 = Dfa_reduction.of_dfa Two_head_dfa.accepts_one in
  (match Dfa_reduction.semi_decide ~max_tuples:3 t1 with
   | Rcdp.Refuted _ -> ()
   | Rcdp.No_counterexample _ -> Alcotest.fail "L(A) ≠ ∅ must refute");
  (* the empty machine: nothing to find *)
  let t2 = Dfa_reduction.of_dfa Two_head_dfa.accepts_nothing in
  match Dfa_reduction.semi_decide ~max_tuples:2 t2 with
  | Rcdp.No_counterexample _ -> ()
  | Rcdp.Refuted _ -> Alcotest.fail "L(A) = ∅ must not refute"

(* ------------------------------------------------------------------ *)
(* Theorem 4.5(2): tiling → RCQP(CQ, CQ) *)

let check_tiling name p =
  let inst = Tiling.of_problem p in
  let verdict = Tiling.decide inst in
  let expected = if Tiling.solvable_2x2 p then "nonempty" else "empty" in
  Alcotest.(check string) name expected (Ric_complete.Rcqp.verdict_name verdict)

let test_tiling_free () = check_tiling "free tiling" (Tiling.free_problem 2)
let test_tiling_striped () = check_tiling "striped tiling" Tiling.striped
let test_tiling_unsolvable () = check_tiling "unsolvable tiling" Tiling.unsolvable

let test_tiling_wrong_corner () =
  (* solvable in general but not with the forced corner *)
  let p = { Tiling.striped with Tiling.t0 = 1 } in
  check_tiling "corner matters" p

let test_tiling_three_tiles () =
  let p =
    {
      Tiling.n_tiles = 3;
      vert = [ (0, 1); (1, 0); (2, 2) ];
      horiz = [ (0, 0); (1, 1); (2, 2) ];
      t0 = 0;
    }
  in
  check_tiling "three tiles" p

(* ------------------------------------------------------------------ *)
(* Corollary 4.6: ∃∀∃3SAT → RCQP with fixed master data *)

let check_sigma3 name e =
  let inst = Sigma3_hardness.of_efe e in
  let expected = if Sigma3_hardness.expected_nonempty e then "nonempty" else "empty" in
  Alcotest.(check string) name expected
    (Ric_complete.Rcqp.verdict_name (Sigma3_hardness.decide inst))

let test_sigma3_true () =
  (* ∃x ∀y ∃z (x) ∧ (y ∨ z): x := 1, z := ¬y-ish — true *)
  check_sigma3 "true instance"
    (Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
       [ (l 0, l 0, l 0); (l 1, l 2, l 2) ])

let test_sigma3_false () =
  (* ∃x ∀y (y): false *)
  check_sigma3 "false instance"
    (Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1 [ (l 1, l 1, l 1) ])

let test_sigma3_mixed () =
  (* ∃x ∀y ∃z (x ∨ ¬y ∨ z) ∧ (¬x ∨ y ∨ ¬z): true via z := y *)
  check_sigma3 "mixed instance"
    (Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
       [ (l 0, l ~neg:true 1, l 2); (l ~neg:true 0, l 1, l ~neg:true 2) ])

let test_sigma3_witness_verifies () =
  let e =
    Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
      [ (l 0, l 0, l 0); (l 1, l 2, l 2) ]
  in
  let inst = Sigma3_hardness.of_efe e in
  (* x := true makes ∀y ∃z hold *)
  let w = Sigma3_hardness.witness_for inst e [| true; false; false |] in
  Alcotest.(check bool) "hand-built witness is complete" true
    (Ric_complete.Rcdp.decide ~schema:inst.Sigma3_hardness.schema
       ~master:inst.Sigma3_hardness.master ~ccs:inst.Sigma3_hardness.ccs ~db:w
       (Ric_query.Lang.Q_cq inst.Sigma3_hardness.query)
     = Ric_complete.Rcdp.Complete)

let test_sigma3_bad_witness_refuted () =
  (* with x := false the first clause (x ∨ x ∨ x) fails, so q = 0 rows
     appear and the database cannot be complete *)
  let e =
    Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
      [ (l 0, l 0, l 0); (l 1, l 2, l 2) ]
  in
  let inst = Sigma3_hardness.of_efe e in
  let w = Sigma3_hardness.witness_for inst e [| false; false; false |] in
  Alcotest.(check bool) "bad assignment is incomplete" true
    (Ric_complete.Rcdp.decide ~schema:inst.Sigma3_hardness.schema
       ~master:inst.Sigma3_hardness.master ~ccs:inst.Sigma3_hardness.ccs ~db:w
       (Ric_query.Lang.Q_cq inst.Sigma3_hardness.query)
     <> Ric_complete.Rcdp.Complete)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_rcdp_reduction =
  QCheck2.Test.make ~name:"Theorem 3.6 reduction is faithful" ~count:12
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let fe = Sat.random_fe ~seed ~n_forall:2 ~n_exists:1 ~n_clauses:3 in
      let inst = Rcdp_hardness.of_fe fe in
      Rcdp_hardness.decide inst = Rcdp_hardness.expected fe)

let prop_rcqp_reduction =
  QCheck2.Test.make ~name:"Theorem 4.5(1) reduction is faithful" ~count:12
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let cnf = Sat.random_cnf ~seed ~n_vars:2 ~n_clauses:3 in
      let inst = Rcqp_hardness.of_cnf cnf in
      Rcqp_hardness.decide inst = Rcqp_hardness.expected_nonempty cnf)

let prop_tiling_reduction =
  QCheck2.Test.make ~name:"Theorem 4.5(2) reduction is faithful" ~count:10
    QCheck2.Gen.(
      let pair_list = list_size (int_bound 6) (pair (int_bound 1) (int_bound 1)) in
      pair pair_list pair_list)
    (fun (vert, horiz) ->
      let p = { Tiling.n_tiles = 2; vert; horiz; t0 = 0 } in
      let verdict = Tiling.decide (Tiling.of_problem p) in
      match verdict, Tiling.solvable_2x2 p with
      | Ric_complete.Rcqp.Nonempty _, true | Ric_complete.Rcqp.Empty _, false -> true
      | Ric_complete.Rcqp.Unknown _, _ -> true (* budget exhaustion is allowed *)
      | _ -> false)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rcdp_reduction; prop_rcqp_reduction; prop_tiling_reduction ]

let () =
  Alcotest.run "reductions"
    [
      ( "propositional",
        [
          Alcotest.test_case "3sat solver" `Quick test_sat_solver;
          Alcotest.test_case "∀∃ evaluator" `Quick test_fe_eval;
          Alcotest.test_case "∃∀∃ evaluator" `Quick test_efe_eval;
        ] );
      ( "theorem-3.6",
        [
          Alcotest.test_case "true instance" `Quick test_rcdp_reduction_true;
          Alcotest.test_case "false instances" `Quick test_rcdp_reduction_false;
          Alcotest.test_case "random instances" `Quick test_rcdp_reduction_random;
          Alcotest.test_case "IND fast path agrees" `Quick test_rcdp_reduction_ind_fast_agrees;
        ] );
      ( "theorem-4.5(1)",
        [
          Alcotest.test_case "sat ⇒ empty" `Quick test_rcqp_reduction_sat;
          Alcotest.test_case "unsat ⇒ nonempty" `Quick test_rcqp_reduction_unsat;
          Alcotest.test_case "random instances" `Quick test_rcqp_reduction_random;
        ] );
      ( "two-head dfa",
        [
          Alcotest.test_case "simulation" `Quick test_dfa_simulation;
          Alcotest.test_case "equal heads" `Quick test_dfa_equal_heads;
          Alcotest.test_case "bounded emptiness" `Quick test_dfa_emptiness;
        ] );
      ( "theorem-3.1(3)",
        [
          Alcotest.test_case "datalog agrees with simulator" `Quick test_dfa_datalog_agrees;
          Alcotest.test_case "string encoding well-formed" `Quick test_dfa_encoding_well_formed;
          Alcotest.test_case "semi decision" `Slow test_dfa_semi_decision;
        ] );
      ( "corollary-4.6",
        [
          Alcotest.test_case "true instance" `Quick test_sigma3_true;
          Alcotest.test_case "false instance" `Quick test_sigma3_false;
          Alcotest.test_case "mixed instance" `Quick test_sigma3_mixed;
          Alcotest.test_case "witness verifies" `Quick test_sigma3_witness_verifies;
          Alcotest.test_case "bad witness refuted" `Quick test_sigma3_bad_witness_refuted;
        ] );
      ( "theorem-4.5(2)",
        [
          Alcotest.test_case "free" `Quick test_tiling_free;
          Alcotest.test_case "striped" `Quick test_tiling_striped;
          Alcotest.test_case "unsolvable" `Quick test_tiling_unsolvable;
          Alcotest.test_case "corner matters" `Quick test_tiling_wrong_corner;
          Alcotest.test_case "three tiles" `Quick test_tiling_three_tiles;
        ] );
      ("properties", properties);
    ]
