(* Unit and property tests for the relational substrate. *)

open Ric_relational

let value_testable = Alcotest.testable Value.pp Value.equal
let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal
let relation_testable = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_order () =
  Alcotest.(check bool) "int < str" true (Value.compare (Value.Int 5) (Value.Str "a") < 0);
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "str equal" true (Value.equal (Value.Str "x") (Value.Str "x"));
  Alcotest.(check bool) "int/str not equal" false (Value.equal (Value.Int 0) (Value.Str "0"))

let test_value_pp () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.int 42));
  Alcotest.(check string) "str" "abc" (Value.to_string (Value.str "abc"));
  Alcotest.(check string) "quoted str" "'abc'"
    (Format.asprintf "%a" Value.pp_quoted (Value.str "abc"))

(* ------------------------------------------------------------------ *)
(* Domain *)

let test_domain_finite () =
  let d = Domain.finite [ Value.int 0; Value.int 1; Value.int 0 ] in
  Alcotest.(check bool) "mem 0" true (Domain.mem (Value.int 0) d);
  Alcotest.(check bool) "mem 2" false (Domain.mem (Value.int 2) d);
  Alcotest.(check int) "dedup" 2 (List.length (Option.get (Domain.values d)))

let test_domain_finite_too_small () =
  Alcotest.check_raises "singleton rejected"
    (Invalid_argument "Domain.finite: a finite domain needs at least two elements")
    (fun () -> ignore (Domain.finite [ Value.int 0 ]))

let test_domain_infinite () =
  Alcotest.(check bool) "everything" true (Domain.mem (Value.str "anything") Domain.infinite);
  Alcotest.(check bool) "no listing" true (Domain.values Domain.infinite = None)

(* ------------------------------------------------------------------ *)
(* Schema *)

let r_schema =
  Schema.make
    [
      Schema.relation "R" [ Schema.attribute "a"; Schema.attribute ~dom:Domain.boolean "b" ];
      Schema.relation "S" [ Schema.attribute "x" ];
    ]

let test_schema_lookup () =
  Alcotest.(check int) "arity R" 2 (Schema.arity (Schema.find r_schema "R"));
  Alcotest.(check int) "attr index" 1 (Schema.attr_index (Schema.find r_schema "R") "b");
  Alcotest.(check bool) "mem" true (Schema.mem r_schema "S");
  Alcotest.(check bool) "not mem" false (Schema.mem r_schema "T");
  Alcotest.(check bool) "finite dom col"
    true
    (Domain.is_finite (Schema.attr_domain (Schema.find r_schema "R") 1))

let test_schema_duplicates () =
  Alcotest.check_raises "dup relation" (Invalid_argument "Schema: duplicate relation \"R\"")
    (fun () ->
      ignore (Schema.make [ Schema.relation "R" []; Schema.relation "R" [] ]));
  Alcotest.check_raises "dup attribute" (Invalid_argument "Schema: duplicate attribute \"a\"")
    (fun () -> ignore (Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "a" ]))

(* ------------------------------------------------------------------ *)
(* Tuple *)

let test_tuple_basics () =
  let t = Tuple.of_ints [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.check value_testable "get" (Value.int 2) (Tuple.get t 1);
  Alcotest.check tuple_testable "project" (Tuple.of_ints [ 3; 1 ]) (Tuple.project [ 2; 0 ] t)

let test_tuple_conforms () =
  let r = Schema.find r_schema "R" in
  Alcotest.(check bool) "conforms" true (Tuple.conforms r (Tuple.of_ints [ 7; 1 ]));
  Alcotest.(check bool) "bad finite value" false (Tuple.conforms r (Tuple.of_ints [ 7; 9 ]));
  Alcotest.(check bool) "bad arity" false (Tuple.conforms r (Tuple.of_ints [ 7 ]))

(* ------------------------------------------------------------------ *)
(* Relation *)

let test_relation_set_semantics () =
  let r = Relation.of_int_rows [ [ 1; 2 ]; [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check int) "dedup" 2 (Relation.cardinal r);
  Alcotest.(check bool) "mem" true (Relation.mem (Tuple.of_ints [ 3; 4 ]) r);
  let p = Relation.project [ 0 ] r in
  Alcotest.(check int) "projection" 2 (Relation.cardinal p)

let test_relation_algebra () =
  let a = Relation.of_int_rows [ [ 1 ]; [ 2 ] ] in
  let b = Relation.of_int_rows [ [ 2 ]; [ 3 ] ] in
  Alcotest.(check int) "union" 3 (Relation.cardinal (Relation.union a b));
  Alcotest.(check int) "inter" 1 (Relation.cardinal (Relation.inter a b));
  Alcotest.(check int) "diff" 1 (Relation.cardinal (Relation.diff a b));
  Alcotest.(check bool) "subset" true (Relation.subset (Relation.inter a b) a)

let test_relation_arity_mismatch () =
  let a = Relation.of_int_rows [ [ 1 ] ] in
  Alcotest.check_raises "add" (Invalid_argument "Relation: arity mismatch (2 vs 1)")
    (fun () -> ignore (Relation.add (Tuple.of_ints [ 1; 2 ]) a))

(* ------------------------------------------------------------------ *)
(* Columnar builder / packed backing *)

let build_rows rows =
  let b = Relation.Builder.create () in
  List.iter
    (fun row ->
      List.iter (fun v -> Relation.Builder.add_cell b (Intern.id v)) row;
      Relation.Builder.end_row b)
    rows;
  Relation.Builder.finish b

let test_builder_matches_of_tuples () =
  let rows =
    [
      [ Value.str "b"; Value.int 2 ];
      [ Value.str "a"; Value.int 1 ];
      [ Value.str "b"; Value.int 2 ] (* duplicate *);
      [ Value.int 0; Value.str "z" ];
    ]
  in
  let packed = build_rows rows in
  let reference = Relation.of_tuples (List.map Tuple.make rows) in
  Alcotest.check relation_testable "equal as sets" reference packed;
  Alcotest.(check int) "deduplicated" 3 (Relation.cardinal packed);
  (* elements come out in Tuple.compare order, exactly like a TSet *)
  Alcotest.(check (list tuple_testable)) "same iteration order"
    (Relation.elements reference) (Relation.elements packed);
  Alcotest.(check bool) "mem hits" true
    (Relation.mem (Tuple.make [ Value.str "a"; Value.int 1 ]) packed);
  (* mutation falls back to set backing without losing rows *)
  let grown = Relation.add (Tuple.of_ints [ 5; 5 ]) packed in
  Alcotest.(check int) "add on packed" 4 (Relation.cardinal grown)

let test_builder_large_block_sorted () =
  (* enough rows to cross the radix-sort threshold, in reverse order *)
  let n = 5000 in
  let rows = List.init n (fun i -> [ Value.int (n - i); Value.int ((n - i) mod 7) ]) in
  let packed = build_rows rows in
  Alcotest.(check int) "all distinct" n (Relation.cardinal packed);
  let sorted = Relation.elements packed in
  Alcotest.(check bool) "rank-lex sorted" true
    (List.for_all2 Tuple.equal sorted (List.sort Tuple.compare sorted))

let test_builder_arity_mismatch () =
  let b = Relation.Builder.create () in
  Relation.Builder.add_cell b (Intern.id (Value.int 1));
  Relation.Builder.add_cell b (Intern.id (Value.int 2));
  Relation.Builder.end_row b;
  Relation.Builder.add_cell b (Intern.id (Value.int 3));
  Alcotest.check_raises "short row" (Invalid_argument "Relation: arity mismatch (1 vs 2)")
    (fun () -> Relation.Builder.end_row b);
  (* the offending row is discarded, the builder stays usable *)
  Relation.Builder.add_cell b (Intern.id (Value.int 4));
  Relation.Builder.add_cell b (Intern.id (Value.int 5));
  Relation.Builder.end_row b;
  Alcotest.(check int) "two good rows" 2 (Relation.cardinal (Relation.Builder.finish b))

let test_intern_reserve () =
  Intern.reserve (Intern.size () + 5000);
  let before = Intern.growths () in
  for i = 0 to 3999 do
    ignore (Intern.id (Value.str (Printf.sprintf "reserve-probe-%d" i)))
  done;
  Alcotest.(check int) "no growth after reserve" before (Intern.growths ())

(* ------------------------------------------------------------------ *)
(* Database *)

let test_database_basics () =
  let d = Database.of_list r_schema [ ("R", Relation.of_int_rows [ [ 1; 0 ] ]) ] in
  Alcotest.(check int) "tuples" 1 (Database.total_tuples d);
  Alcotest.check relation_testable "S empty" Relation.empty (Database.relation d "S");
  let d2 = Database.add_tuple d "S" (Tuple.of_ints [ 9 ]) in
  Alcotest.(check bool) "contained" true (Database.contained d d2);
  Alcotest.(check bool) "not contained" false (Database.contained d2 d);
  Alcotest.(check int) "adom" 3 (List.length (Database.adom d2))

let test_database_conformance () =
  Alcotest.(check bool) "bad tuple rejected" true
    (try
       ignore (Database.add_tuple (Database.empty r_schema) "R" (Tuple.of_ints [ 1; 5 ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown relation rejected" true
    (try
       ignore (Database.add_tuple (Database.empty r_schema) "T" (Tuple.of_ints [ 1 ]));
       false
     with Invalid_argument _ -> true)

let test_database_union () =
  let d1 = Database.of_list r_schema [ ("R", Relation.of_int_rows [ [ 1; 0 ] ]) ] in
  let d2 = Database.of_list r_schema [ ("R", Relation.of_int_rows [ [ 2; 1 ] ]) ] in
  let u = Database.union d1 d2 in
  Alcotest.(check int) "union size" 2 (Database.total_tuples u);
  Alcotest.(check bool) "idempotent" true (Database.equal u (Database.union u d1))

(* ------------------------------------------------------------------ *)
(* Properties *)

let tuple_gen =
  QCheck2.Gen.(map (fun l -> Tuple.of_ints l) (list_size (return 2) (int_bound 5)))

let relation_gen =
  QCheck2.Gen.(map Relation.of_tuples (list_size (int_bound 8) tuple_gen))

let prop_union_commutative =
  QCheck2.Test.make ~name:"relation union commutes" ~count:200
    QCheck2.Gen.(pair relation_gen relation_gen)
    (fun (a, b) -> Relation.equal (Relation.union a b) (Relation.union b a))

let prop_project_idempotent =
  QCheck2.Test.make ~name:"projecting twice is projecting once" ~count:200 relation_gen
    (fun r ->
      let p = Relation.project [ 0 ] r in
      Relation.equal p (Relation.project [ 0 ] p))

let prop_diff_subset =
  QCheck2.Test.make ~name:"diff is disjoint from subtrahend" ~count:200
    QCheck2.Gen.(pair relation_gen relation_gen)
    (fun (a, b) -> Relation.is_empty (Relation.inter (Relation.diff a b) b))

let prop_containment_partial_order =
  QCheck2.Test.make ~name:"database containment is reflexive and transitive via union"
    ~count:100
    QCheck2.Gen.(pair relation_gen relation_gen)
    (fun (a, b) ->
      let sch = Schema.make [ Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ] ] in
      let da = Database.of_list sch [ ("R", a) ] in
      let db_ = Database.of_list sch [ ("R", b) ] in
      let u = Database.union da db_ in
      Database.contained da da && Database.contained da u && Database.contained db_ u)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_commutative; prop_project_idempotent; prop_diff_subset;
      prop_containment_partial_order ]

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "printing" `Quick test_value_pp;
        ] );
      ( "domain",
        [
          Alcotest.test_case "finite" `Quick test_domain_finite;
          Alcotest.test_case "finite too small" `Quick test_domain_finite_too_small;
          Alcotest.test_case "infinite" `Quick test_domain_infinite;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicates" `Quick test_schema_duplicates;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "conformance" `Quick test_tuple_conforms;
        ] );
      ( "relation",
        [
          Alcotest.test_case "set semantics" `Quick test_relation_set_semantics;
          Alcotest.test_case "algebra" `Quick test_relation_algebra;
          Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
        ] );
      ( "builder",
        [
          Alcotest.test_case "matches of_tuples" `Quick test_builder_matches_of_tuples;
          Alcotest.test_case "large block sorted" `Quick test_builder_large_block_sorted;
          Alcotest.test_case "arity mismatch" `Quick test_builder_arity_mismatch;
          Alcotest.test_case "intern reserve" `Quick test_intern_reserve;
        ] );
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "conformance" `Quick test_database_conformance;
          Alcotest.test_case "union" `Quick test_database_union;
        ] );
      ("properties", properties);
    ]
