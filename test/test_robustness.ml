(* Robustness tests for the ricd service: cooperative deadlines through
   the deciders, fault injection (worker crashes, torn frames, dropped
   replies, injected latency), pool supervision (respawn + quarantine),
   client receive timeouts, and crash recovery from the session
   journal. *)

open Ric_service
open Ric_complete
module Json = Ric_text.Json
module Journal = Ric_text.Journal
module Scenario = Ric_text.Scenario

(* ------------------------------------------------------------------ *)
(* plumbing *)

let obj_field k = function Json.Obj fs -> List.assoc_opt k fs | _ -> None

let get k j =
  match obj_field k j with
  | Some v -> v
  | None -> Alcotest.failf "no field %S in %s" k (Json.to_string j)

let get_bool k j =
  match get k j with
  | Json.Bool b -> b
  | _ -> Alcotest.failf "field %S is not a bool in %s" k (Json.to_string j)

let get_int k j =
  match get k j with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %S is not an int in %s" k (Json.to_string j)

let get_str k j =
  match get k j with
  | Json.Str s -> s
  | _ -> Alcotest.failf "field %S is not a string in %s" k (Json.to_string j)

let assert_ok j =
  if not (get_bool "ok" j) then Alcotest.failf "request failed: %s" (Json.to_string j)

let verdict_of j = get_str "verdict" (get "result" j)

let rec wait_until ?(timeout = 5.0) msg pred =
  if pred () then ()
  else if timeout <= 0. then Alcotest.failf "timed out waiting: %s" msg
  else begin
    Unix.sleepf 0.02;
    wait_until ~timeout:(timeout -. 0.02) msg pred
  end

(* An easy scenario (decides in microseconds) and a hostile one: QH's
   verdict is Complete, but only after the decider exhausts every
   valuation of 8 tableau variables over the active domain — hours of
   work, which is exactly what a deadline must cut short. *)

let easy_source =
  {|
  schema Cust(cid, name).
  master DCust(cid, name).
  rows Cust { (c0, alice) }.
  rows DCust { (c0, alice) (c1, bob) }.
  query Q(c, n) :- Cust(c, n).
  constraint BC(c, n) :- Cust(c, n) => DCust[0, 1].
|}

let hard_source =
  {|
  schema R8(a, b, c, d, e, f, g, h).
  master M(x).
  rows M { (m0) }.
  rows R8 { (m0, v1, v2, v3, v4, v5, v6, v7) }.
  constraint Bound(a) :- R8(a, b, c, d, e, f, g, h) => M[0].
  query QH(a) :- R8(a, b, c, d, e, f, g, h).
|}

let open_req ?name source = Protocol.Open { path = None; source = Some source; name }

let rcdp ?(nocache = false) ?timeout_ms ?search session query =
  Protocol.Rcdp
    { session; query; nocache; timeout_ms; search; req_id = None; explain = false }

let insert session rel rows =
  Protocol.Insert
    {
      session;
      rel;
      rows = List.map (List.map (fun s -> Ric_relational.Value.Str s)) rows;
    }

(* ------------------------------------------------------------------ *)
(* Budget *)

let exhausts f =
  match f () with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted r -> r

let test_budget_steps () =
  let b = Budget.create ~max_steps:100 () in
  let r = exhausts (fun () -> for _ = 1 to 1000 do Budget.tick b done) in
  Alcotest.(check string) "reason" "step_limit" (Budget.reason_name r);
  Alcotest.(check int) "stopped at the cap" 100 (Budget.steps b)

let test_budget_deadline () =
  let b = Budget.create ~deadline_after:0.01 () in
  Unix.sleepf 0.03;
  let r = exhausts (fun () -> Budget.check_now b) in
  Alcotest.(check string) "reason" "deadline" (Budget.reason_name r)

let test_budget_cancel () =
  let flag = Atomic.make false in
  let b = Budget.create ~cancel:flag () in
  Budget.check_now b;
  (* no raise while unset *)
  Atomic.set flag true;
  let r = exhausts (fun () -> Budget.check_now b) in
  Alcotest.(check string) "reason" "cancelled" (Budget.reason_name r)

let test_budget_unlimited () =
  Alcotest.(check bool) "unlimited" true (Budget.is_unlimited Budget.unlimited);
  for _ = 1 to 10_000 do
    Budget.tick Budget.unlimited
  done;
  Budget.check_now Budget.unlimited

(* ------------------------------------------------------------------ *)
(* the deciders respect the clock *)

let test_rcdp_deadline_aborts_promptly () =
  let sc = Scenario.parse hard_source in
  let q = Option.get (Scenario.find_query sc "QH") in
  let clock = Budget.create ~deadline_after:0.1 () in
  let stats = ref { Rcdp.valuations_visited = 0; branches_pruned = 0 } in
  let t0 = Unix.gettimeofday () in
  let reason =
    exhausts (fun () ->
        Rcdp.decide ~clock ~collect_stats:stats ~schema:sc.Scenario.db_schema
          ~master:sc.Scenario.master ~ccs:(Scenario.all_ccs sc) ~db:sc.Scenario.db q)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check string) "reason" "deadline" (Budget.reason_name reason);
  Alcotest.(check bool)
    (Printf.sprintf "aborted promptly (%.3fs)" elapsed)
    true (elapsed < 2.0);
  Alcotest.(check bool) "work-done counters survive" true
    (!stats.Rcdp.valuations_visited > 0 || Budget.steps clock > 0)

let test_rcqp_deadline_aborts_promptly () =
  let sc = Scenario.parse hard_source in
  let q = Option.get (Scenario.find_query sc "QH") in
  let clock = Budget.create ~deadline_after:0.1 () in
  let t0 = Unix.gettimeofday () in
  (* rcqp on this instance may finish fast (it never reads D) or hit
     the clock — either is fine, but it must not blow the deadline *)
  (try
     ignore
       (Rcqp.decide ~clock ~schema:sc.Scenario.db_schema ~master:sc.Scenario.master
          ~ccs:(Scenario.all_ccs sc) q)
   with Budget.Exhausted _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "bounded (%.3fs)" elapsed)
    true (elapsed < 2.0)

(* ------------------------------------------------------------------ *)
(* service-level timeouts *)

let test_service_timeout_verdict () =
  let service = Service.create () in
  let opened = Service.handle service (open_req hard_source) in
  assert_ok opened;
  let sid = get_str "session" opened in
  let t0 = Unix.gettimeofday () in
  let r = Service.handle service (rcdp ~timeout_ms:100 sid "QH") in
  let elapsed = Unix.gettimeofday () -. t0 in
  assert_ok r;
  Alcotest.(check string) "timeout verdict" "timeout" (verdict_of r);
  Alcotest.(check string) "reason" "deadline" (get_str "reason" (get "result" r));
  Alcotest.(check int) "timeout echoed" 100 (get_int "timeout_ms" (get "result" r));
  Alcotest.(check bool) "work reported" true (get_int "steps" (get "result" r) > 0);
  Alcotest.(check bool)
    (Printf.sprintf "well under a second (%.3fs)" elapsed)
    true (elapsed < 1.0);
  (* never cached: the next request computes again (and times out again) *)
  let r2 = Service.handle service (rcdp ~timeout_ms:100 sid "QH") in
  Alcotest.(check bool) "not served from cache" false (get_bool "cached" r2);
  Alcotest.(check string) "times out again" "timeout" (verdict_of r2);
  (* the service keeps serving: an easy session decides normally *)
  let opened2 = Service.handle service (open_req easy_source) in
  assert_ok opened2;
  let sid2 = get_str "session" opened2 in
  let ok_r = Service.handle service (rcdp ~timeout_ms:5000 sid2 "Q") in
  Alcotest.(check string) "easy query decides within its deadline" "incomplete"
    (verdict_of ok_r);
  (* and a successful decide under a deadline is still cacheable *)
  let warm = Service.handle service (rcdp sid2 "Q") in
  Alcotest.(check bool) "cached" true (get_bool "cached" warm);
  let stats = Service.handle service Protocol.Stats in
  Alcotest.(check bool) "timeouts counted" true (get_int "timeouts" stats >= 2)

(* ------------------------------------------------------------------ *)
(* pool supervision *)

let test_pool_survives_job_failure () =
  let served = Atomic.make 0 in
  let pool =
    Pool.create ~domains:1 ~capacity:4
      ~worker:(fun n ->
        if n = 0 then failwith "per-job failure"
        else ignore (Atomic.fetch_and_add served 1))
      ()
  in
  Alcotest.(check bool) "submit bad" true (Pool.submit pool 0);
  Alcotest.(check bool) "submit good" true (Pool.submit pool 1);
  wait_until "good job after failure" (fun () -> Atomic.get served = 1);
  Pool.shutdown pool;
  let s = Pool.stats pool in
  Alcotest.(check int) "failure counted" 1 s.Pool.failures;
  Alcotest.(check int) "no crashes" 0 s.Pool.crashes

let test_pool_crash_respawn_retry () =
  let served = Atomic.make 0 in
  let pool =
    Pool.create ~domains:2 ~capacity:4
      ~worker:(fun (attempt : int Atomic.t) ->
        (* crash the first worker this job lands on; succeed on retry *)
        if Atomic.fetch_and_add attempt 1 = 0 then raise (Pool.Crash "boom")
        else ignore (Atomic.fetch_and_add served 1))
      ()
  in
  Alcotest.(check bool) "submitted" true (Pool.submit pool (Atomic.make 0));
  wait_until "job retried on a fresh worker" (fun () -> Atomic.get served = 1);
  (* the pool still has capacity to serve new jobs afterwards *)
  Alcotest.(check bool) "submitted" true (Pool.submit pool (Atomic.make 1));
  wait_until "later job served" (fun () -> Atomic.get served = 2);
  Pool.shutdown pool;
  let s = Pool.stats pool in
  Alcotest.(check int) "one crash" 1 s.Pool.crashes;
  Alcotest.(check int) "one respawn" 1 s.Pool.respawns;
  Alcotest.(check int) "nothing quarantined" 0 s.Pool.quarantined

let test_pool_quarantines_double_crash () =
  let quarantined = Atomic.make 0 in
  let pool =
    Pool.create
      ~on_quarantine:(fun _job _reason -> ignore (Atomic.fetch_and_add quarantined 1))
      ~domains:2 ~capacity:4
      ~worker:(fun () -> raise (Pool.Crash "always fatal"))
      ()
  in
  Alcotest.(check bool) "submitted" true (Pool.submit pool ());
  wait_until "job quarantined after two crashes" (fun () -> Atomic.get quarantined = 1);
  Pool.shutdown pool;
  let s = Pool.stats pool in
  Alcotest.(check int) "two crashes" 2 s.Pool.crashes;
  Alcotest.(check int) "quarantined once" 1 s.Pool.quarantined;
  Alcotest.(check int) "workers replaced" 2 s.Pool.respawns

(* ------------------------------------------------------------------ *)
(* framing under faults *)

let test_torn_write_detected () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Protocol.write_frame ~tear:5 a {|{"ok":true}|} with
   | () -> Alcotest.fail "torn write should raise"
   | exception Protocol.Frame_error _ -> ());
  Unix.close a;
  (* the reader sees a frame that dies mid-payload *)
  (match Protocol.read_frame b with
   | _ -> Alcotest.fail "reader should detect the torn frame"
   | exception Protocol.Frame_error _ -> ());
  Unix.close b

let test_oversized_header_rejected () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Protocol.max_frame + 1));
  ignore (Unix.write a header 0 4);
  (match Protocol.read_frame b with
   | _ -> Alcotest.fail "oversized length must be refused"
   | exception Protocol.Frame_error _ -> ());
  Unix.close a;
  Unix.close b

let test_faults_env_parsing () =
  Unix.putenv "RIC_FAULTS" "tear_write=tear:9, decide=delay:0.001 ,bogus,also=bad";
  Faults.init_from_env ();
  Alcotest.(check (option int)) "tear armed from env" (Some 9) (Faults.tear ());
  Alcotest.(check (option int)) "single shot" None (Faults.tear ());
  Faults.fire "decide";
  (* delay consumed without raising *)
  Faults.reset ();
  Unix.putenv "RIC_FAULTS" ""

(* ------------------------------------------------------------------ *)
(* end to end under faults *)

let with_server ?(domains = 2) ?(queue_capacity = 16) ?(read_deadline = 2.) ?journal
    ?(recover = false) f =
  let socket_path =
    Printf.sprintf "%s/ric-rob-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) (Random.int 100000)
  in
  let server =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.socket_path;
            domains;
            queue_capacity;
            max_connections = 960;
            read_deadline_s = read_deadline;
            write_deadline_s = 2.;
            root = None;
            journal;
            recover;
            search = Ric_complete.Search_mode.Seq;
            metrics = None;
            trace = None;
            flight = None;
          })
  in
  let finish () =
    Faults.reset ();
    (try
       Client.with_connection ~retries:40 socket_path (fun c ->
           ignore (Client.rpc c Protocol.Shutdown))
     with _ -> ());
    Domain.join server;
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  in
  Faults.reset ();
  match f socket_path with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let test_e2e_client_receive_timeout () =
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 ~receive_timeout:0.3 socket_path (fun c ->
          let opened = Client.rpc c (open_req easy_source) in
          assert_ok opened;
          let sid = get_str "session" opened in
          Faults.arm "decide" (Faults.Delay 1.5);
          (match Client.rpc c (rcdp ~nocache:true sid "Q") with
           | _ -> Alcotest.fail "expected a client-side timeout"
           | exception Client.Timeout -> ()));
      (* the server survives; a patient client gets an answer *)
      Client.with_connection ~retries:40 socket_path (fun c ->
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "alive after abandoned request" true (get_bool "pong" pong)))

let test_e2e_worker_crash_respawn () =
  with_server ~domains:2 (fun socket_path ->
      Client.with_connection ~retries:40 ~receive_timeout:2.0 socket_path (fun c ->
          Faults.arm "worker" Faults.Crash_worker;
          (* the worker dies holding this request; the pool requeues
             the job to a fresh worker, which answers — a single crash
             is invisible to the client under the event-loop front end *)
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "served after respawn" true (get_bool "pong" pong));
      Client.with_connection ~retries:40 socket_path (fun c ->
          let stats = Client.rpc c Protocol.Stats in
          let workers = get "workers" stats in
          Alcotest.(check int) "crash counted" 1 (get_int "crashes" workers);
          Alcotest.(check int) "respawn counted" 1 (get_int "respawns" workers)))

let test_e2e_double_crash_quarantines () =
  with_server ~domains:2 (fun socket_path ->
      Client.with_connection ~retries:40 ~receive_timeout:2.0 socket_path (fun c ->
          Faults.arm ~times:2 "worker" Faults.Crash_worker;
          (* the request crashes its first worker, is retried, and
             crashes the replacement too: the pool quarantines it and
             the front end answers a structured error, then hangs up *)
          let r = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "refused" false (get_bool "ok" r);
          Alcotest.(check string) "kind" "worker_crash" (get_str "kind" r));
      Client.with_connection ~retries:40 socket_path (fun c ->
          let stats = Client.rpc c Protocol.Stats in
          let workers = get "workers" stats in
          Alcotest.(check int) "quarantined" 1 (get_int "quarantined" workers);
          Alcotest.(check bool) "daemon survived both crashes" true
            (get_bool "ok" stats)))

let test_e2e_torn_reply () =
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 ~receive_timeout:0.5 socket_path (fun c ->
          Faults.arm "tear_write" (Faults.Tear 5);
          (match Client.rpc c Protocol.Ping with
           | _ -> Alcotest.fail "torn reply should not parse"
           | exception Failure _ -> ()));
      Client.with_connection ~retries:40 socket_path (fun c ->
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "alive after torn frame" true (get_bool "pong" pong)))

let test_e2e_dropped_connection () =
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 ~receive_timeout:0.5 socket_path (fun c ->
          Faults.arm "worker" Faults.Drop;
          (match Client.rpc c Protocol.Ping with
           | _ -> Alcotest.fail "dropped connection should not reply"
           | exception (Failure _ | Unix.Unix_error _) -> ()));
      Client.with_connection ~retries:40 socket_path (fun c ->
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "alive after drop" true (get_bool "pong" pong)))

let test_e2e_timeout_verdict_over_socket () =
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let opened = Client.rpc c (open_req hard_source) in
          assert_ok opened;
          let sid = get_str "session" opened in
          let t0 = Unix.gettimeofday () in
          let r = Client.rpc c (rcdp ~timeout_ms:100 sid "QH") in
          let elapsed = Unix.gettimeofday () -. t0 in
          assert_ok r;
          Alcotest.(check string) "timeout verdict" "timeout" (verdict_of r);
          Alcotest.(check bool)
            (Printf.sprintf "prompt (%.3fs)" elapsed)
            true (elapsed < 1.0);
          (* the daemon is immediately useful again *)
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "pong" true (get_bool "pong" pong)))

(* ------------------------------------------------------------------ *)
(* overload: admission control, load shedding, slow-loris eviction,
   graceful drain, and the client-side circuit breaker *)

(* raw-socket plumbing: the shed and drain tests need to pipeline
   requests from several connections without blocking on replies,
   which the blocking [Client] cannot do *)
let raw_connect socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  fd

let raw_reply fd =
  match Protocol.read_frame fd with
  | Some payload -> Json.of_string payload
  | None -> Alcotest.fail "connection closed without a reply"

let ping_payload = Json.to_string (Protocol.to_json Protocol.Ping)

(* [raw_connect] has no startup-retry loop, so make sure the daemon is
   accepting before the raw sockets pile in *)
let wait_ready socket_path =
  Client.with_connection ~retries:40 socket_path (fun c ->
      ignore (Client.rpc c Protocol.Ping))

let test_e2e_queue_full_sheds () =
  with_server ~domains:1 ~queue_capacity:1 (fun socket_path ->
      wait_ready socket_path;
      let s1 = raw_connect socket_path in
      let s2 = raw_connect socket_path in
      let s3 = raw_connect socket_path in
      (* the only worker sleeps on s1's request; s2's fills the
         one-slot queue; s3's finds it full and must be shed *)
      Faults.arm "worker" (Faults.Delay 0.8);
      Protocol.write_frame s1 ping_payload;
      Unix.sleepf 0.3;
      Protocol.write_frame s2 ping_payload;
      Unix.sleepf 0.2;
      Protocol.write_frame s3 ping_payload;
      let r3 = raw_reply s3 in
      Alcotest.(check bool) "shed, not served" false (get_bool "ok" r3);
      Alcotest.(check string) "kind" "overloaded" (get_str "kind" r3);
      (match Protocol.retry_after_ms r3 with
       | Some ms -> Alcotest.(check bool) "positive retry hint" true (ms > 0)
       | None -> Alcotest.fail "shed reply carries no retry_after_ms");
      (* admitted requests are never shed: both get their pong *)
      Alcotest.(check bool) "in-worker request served" true (get_bool "pong" (raw_reply s1));
      Alcotest.(check bool) "queued request served" true (get_bool "pong" (raw_reply s2));
      List.iter Unix.close [ s1; s2; s3 ])

let test_e2e_slow_loris_evicted () =
  with_server ~read_deadline:0.5 (fun socket_path ->
      wait_ready socket_path;
      let loris = raw_connect socket_path in
      (* two header bytes, then silence: a partial frame that dangles *)
      ignore (Unix.write loris (Bytes.make 2 '\000') 0 2);
      (* the event loop is not wedged while the loris dangles *)
      Client.with_connection ~retries:40 socket_path (fun c ->
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "served next to a loris" true (get_bool "pong" pong));
      (* past the read deadline the loris is evicted, not served *)
      Unix.sleepf 1.0;
      (match Unix.read loris (Bytes.create 16) 0 16 with
       | 0 -> ()
       | n -> Alcotest.failf "expected eviction, read %d byte(s)" n
       | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      Unix.close loris;
      (* and the daemon keeps serving afterwards *)
      Client.with_connection ~retries:40 socket_path (fun c ->
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "alive after eviction" true (get_bool "pong" pong)))

let test_e2e_sigterm_drains_queue () =
  with_server ~domains:1 ~queue_capacity:8 (fun socket_path ->
      wait_ready socket_path;
      let s1 = raw_connect socket_path in
      let s2 = raw_connect socket_path in
      let s3 = raw_connect socket_path in
      (* park the only worker on s1's request so s2's and s3's are
         still queued when the signal lands *)
      Faults.arm "worker" (Faults.Delay 0.6);
      Protocol.write_frame s1 ping_payload;
      Unix.sleepf 0.2;
      Protocol.write_frame s2 ping_payload;
      Protocol.write_frame s3 ping_payload;
      Unix.sleepf 0.2;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* graceful drain: every admitted job is answered before exit *)
      List.iter
        (fun fd ->
          Alcotest.(check bool) "answered during drain" true
            (get_bool "pong" (raw_reply fd));
          Unix.close fd)
        [ s1; s2; s3 ])

let test_breaker_opens_and_half_opens () =
  let open Client.Breaker in
  let b = create ~threshold:2 ~cooldown:0.2 () in
  Alcotest.(check bool) "closed admits" true (allow b);
  note_failure b;
  Alcotest.(check bool) "below threshold stays closed" true (allow b);
  note_failure b;
  Alcotest.(check bool) "threshold opens" false (allow b);
  Alcotest.(check bool) "state open" true (state b = Open);
  Unix.sleepf 0.25;
  Alcotest.(check bool) "cooldown elapsed: half-open" true (state b = Half_open);
  Alcotest.(check bool) "one probe admitted" true (allow b);
  Alcotest.(check bool) "second caller waits behind the probe" false (allow b);
  note_failure b;
  Alcotest.(check bool) "failed probe re-opens" false (allow b);
  Alcotest.(check bool) "state open again" true (state b = Open);
  Unix.sleepf 0.25;
  Alcotest.(check bool) "probe again" true (allow b);
  note_success b;
  Alcotest.(check bool) "successful probe closes" true (state b = Closed);
  Alcotest.(check bool) "closed admits again" true (allow b)

let test_e2e_retry_honours_hint () =
  with_server ~domains:1 ~queue_capacity:1 (fun socket_path ->
      wait_ready socket_path;
      let s1 = raw_connect socket_path in
      let s2 = raw_connect socket_path in
      (* saturate: worker parked on s1, queue filled by s2 *)
      Faults.arm "worker" (Faults.Delay 0.6);
      Protocol.write_frame s1 ping_payload;
      Unix.sleepf 0.2;
      Protocol.write_frame s2 ping_payload;
      Unix.sleepf 0.1;
      (* a retrying client is shed at first but succeeds once the
         backlog clears, sleeping at least the server's hint between
         attempts — no exception, a real pong *)
      Client.with_connection ~retries:40 socket_path (fun c ->
          (* a generous threshold: this test is about riding out the
             shed with retries, not about opening the circuit *)
          let breaker = Client.Breaker.create ~threshold:50 () in
          let r = Client.rpc_retrying ~breaker ~max_retries:20 c Protocol.Ping in
          Alcotest.(check bool) "served after retrying" true (get_bool "pong" r);
          Alcotest.(check bool) "breaker stayed closed" true
            (Client.Breaker.state breaker = Client.Breaker.Closed));
      Alcotest.(check bool) "parked request served" true (get_bool "pong" (raw_reply s1));
      Alcotest.(check bool) "queued request served" true (get_bool "pong" (raw_reply s2));
      List.iter Unix.close [ s1; s2 ])

(* ------------------------------------------------------------------ *)
(* journal + crash recovery *)

let test_journal_roundtrip () =
  let entries =
    [
      Journal.Opened { id = "s1"; name = Some "crm"; source = "schema R(a).\nrows R { }." };
      Journal.Inserted
        {
          id = "s1";
          rel = "R";
          rows = [ [ Ric_relational.Value.Str "x"; Ric_relational.Value.Int 7 ] ];
        };
      Journal.Inserted_bulk
        {
          id = "s1";
          batches =
            [
              ("R", [ [ Ric_relational.Value.Str "y"; Ric_relational.Value.Int 8 ] ]);
              ("S", [ [ Ric_relational.Value.Int 1 ]; [ Ric_relational.Value.Int 2 ] ]);
            ];
        };
      Journal.Closed { id = "s1" };
    ]
  in
  List.iter
    (fun e ->
      match Journal.entry_of_json (Journal.json_of_entry e) with
      | Ok e' -> Alcotest.(check bool) "entry round trips" true (e = e')
      | Error m -> Alcotest.failf "decode failed: %s" m)
    entries;
  (* file round trip *)
  let path = Filename.temp_file "ric-journal" ".jsonl" in
  let j = Journal.open_append ~truncate:true path in
  List.iter (Journal.append j) entries;
  Journal.close j;
  let r = Journal.replay_file path in
  Alcotest.(check bool) "entries preserved in order" true (r.Journal.entries = entries);
  Alcotest.(check bool) "no torn tail" false r.Journal.torn_tail;
  Sys.remove path

let test_journal_torn_tail () =
  let path = Filename.temp_file "ric-journal" ".jsonl" in
  let j = Journal.open_append ~truncate:true path in
  Journal.append j (Journal.Opened { id = "s1"; name = None; source = "schema R(a)." });
  Journal.append j (Journal.Closed { id = "s1" });
  Journal.close j;
  (* simulate a crash mid-append *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"r":"insert","id":"s1","rel|};
  close_out oc;
  let r = Journal.replay_file path in
  Alcotest.(check bool) "torn tail flagged" true r.Journal.torn_tail;
  Alcotest.(check int) "intact prefix replayed" 2 (List.length r.Journal.entries);
  Sys.remove path

let test_service_recovery () =
  let jpath = Filename.temp_file "ric-journal" ".jsonl" in
  (* run 1: two sessions, one insert, one close — then "crash" *)
  let svc1 = Service.create () in
  Service.attach_journal svc1 (Journal.open_append ~truncate:true jpath);
  let o1 = Service.handle svc1 (open_req ~name:"keep" easy_source) in
  assert_ok o1;
  let sid = get_str "session" o1 in
  let cold = Service.handle svc1 (rcdp sid "Q") in
  Alcotest.(check string) "incomplete before crash" "incomplete" (verdict_of cold);
  assert_ok (Service.handle svc1 (insert sid "Cust" [ [ "c1"; "bob" ] ]));
  let o2 = Service.handle svc1 (open_req ~name:"gone" easy_source) in
  assert_ok o2;
  let sid2 = get_str "session" o2 in
  assert_ok (Service.handle svc1 (Protocol.Close { session = sid2 }));
  (* crash: nothing closed cleanly; the tail is torn mid-record *)
  let oc = open_out_gen [ Open_append ] 0o644 jpath in
  output_string oc {|{"r":"open","id":"s9","sour|};
  close_out oc;
  (* run 2: recover *)
  let svc2 = Service.create () in
  let r = Service.recover svc2 jpath in
  Alcotest.(check int) "one session survives" 1 r.Service.sessions_restored;
  Alcotest.(check bool) "torn tail tolerated" true r.Service.torn_tail;
  Alcotest.(check bool) "closed session not retained" true
    (List.for_all
       (function
         | Journal.Opened { id; _ }
         | Journal.Inserted { id; _ }
         | Journal.Inserted_bulk { id; _ } -> id = sid
         | Journal.Closed _ -> false)
       r.Service.retained);
  (* the recovered session answers under its original id, with the
     insert applied (epoch 1) and the verdict recomputed *)
  let q = Service.handle svc2 (rcdp sid "Q") in
  assert_ok q;
  Alcotest.(check int) "epoch restored" 1 (get_int "epoch" q);
  (* the replayed insert made Cust cover everything DCust admits, so
     the verdict flips from the pre-insert "incomplete" to "complete" —
     proof the insert really was replayed *)
  Alcotest.(check string) "verdict reflects the replayed insert" "complete" (verdict_of q);
  (* fresh sessions never collide with recovered ids *)
  let o3 = Service.handle svc2 (open_req easy_source) in
  assert_ok o3;
  Alcotest.(check bool) "id counter advanced past recovered ids" true
    (get_str "session" o3 <> sid && get_str "session" o3 <> sid2);
  Sys.remove jpath

let test_e2e_recover_after_restart () =
  let jpath = Filename.temp_file "ric-journal" ".jsonl" in
  (* first daemon: open + insert, shut down *)
  with_server ~journal:jpath (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let opened = Client.rpc c (open_req ~name:"durable" easy_source) in
          assert_ok opened;
          Alcotest.(check string) "first id" "s1" (get_str "session" opened);
          assert_ok (Client.rpc c (insert "s1" "Cust" [ [ "c1"; "bob" ] ]))));
  (* second daemon on the same journal with --recover *)
  with_server ~journal:jpath ~recover:true (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let q = Client.rpc c (rcdp "s1" "Q") in
          assert_ok q;
          Alcotest.(check int) "epoch survived the restart" 1 (get_int "epoch" q);
          Alcotest.(check string) "verdict reflects the replayed insert" "complete"
            (verdict_of q)));
  Sys.remove jpath

(* ------------------------------------------------------------------ *)
(* client backoff *)

let test_client_backoff_gives_up () =
  let dead =
    Printf.sprintf "%s/ric-rob-dead-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  (try Unix.unlink dead with Unix.Unix_error _ -> ());
  let t0 = Unix.gettimeofday () in
  (match Client.connect ~retries:3 dead with
   | _ -> Alcotest.fail "connect to a dead socket must fail"
   | exception Unix.Unix_error _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  (* three backoffs at 10/20/40 ms ceilings with >= 50% jitter floor *)
  Alcotest.(check bool)
    (Printf.sprintf "backed off between retries (%.3fs)" elapsed)
    true
    (elapsed >= 0.03 && elapsed < 5.0)

let () =
  Alcotest.run "robustness"
    [
      ( "budget",
        [
          Alcotest.test_case "step limit" `Quick test_budget_steps;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "cancel flag" `Quick test_budget_cancel;
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "rcdp aborts promptly" `Quick test_rcdp_deadline_aborts_promptly;
          Alcotest.test_case "rcqp stays bounded" `Quick test_rcqp_deadline_aborts_promptly;
          Alcotest.test_case "service timeout verdict" `Quick test_service_timeout_verdict;
        ] );
      ( "pool supervision",
        [
          Alcotest.test_case "job failure survived" `Quick test_pool_survives_job_failure;
          Alcotest.test_case "crash respawns + retries" `Quick test_pool_crash_respawn_retry;
          Alcotest.test_case "double crash quarantines" `Quick
            test_pool_quarantines_double_crash;
        ] );
      ( "framing faults",
        [
          Alcotest.test_case "torn write detected" `Quick test_torn_write_detected;
          Alcotest.test_case "oversized header refused" `Quick test_oversized_header_rejected;
          Alcotest.test_case "RIC_FAULTS parsing" `Quick test_faults_env_parsing;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "client receive timeout" `Quick test_e2e_client_receive_timeout;
          Alcotest.test_case "worker crash + respawn" `Quick test_e2e_worker_crash_respawn;
          Alcotest.test_case "double crash quarantined" `Quick
            test_e2e_double_crash_quarantines;
          Alcotest.test_case "torn reply" `Quick test_e2e_torn_reply;
          Alcotest.test_case "dropped connection" `Quick test_e2e_dropped_connection;
          Alcotest.test_case "timeout verdict over socket" `Quick
            test_e2e_timeout_verdict_over_socket;
        ] );
      ( "overload",
        [
          Alcotest.test_case "queue full sheds with retry hint" `Quick
            test_e2e_queue_full_sheds;
          Alcotest.test_case "slow loris evicted" `Quick test_e2e_slow_loris_evicted;
          Alcotest.test_case "SIGTERM drains the queue" `Quick
            test_e2e_sigterm_drains_queue;
          Alcotest.test_case "breaker opens and half-opens" `Quick
            test_breaker_opens_and_half_opens;
          Alcotest.test_case "retrying client rides out a shed" `Quick
            test_e2e_retry_honours_hint;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "journal round trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail tolerated" `Quick test_journal_torn_tail;
          Alcotest.test_case "service recovery" `Quick test_service_recovery;
          Alcotest.test_case "daemon restart with --recover" `Quick
            test_e2e_recover_after_restart;
        ] );
      ( "client backoff",
        [ Alcotest.test_case "gives up after retries" `Quick test_client_backoff_gives_up ] );
    ]
