(* Tests for the valuation-search performance layer: Search_mode
   parsing, Budget fork/merge/cancel, the incremental constraint
   checker (differential against Containment.holds_all), seq/inc/par
   verdict agreement on every scenario file, and the satellite
   regressions — duplicate-atom removal (remove one occurrence, not
   every physically-shared copy) and budget checks at search entry. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
module Scenario = Ric_text.Scenario

let v = Term.var

(* ------------------------------------------------------------------ *)
(* Search_mode *)

let test_search_mode_strings () =
  let roundtrip m =
    Alcotest.(check bool)
      (Search_mode.to_string m ^ " round trips")
      true
      (Search_mode.of_string (Search_mode.to_string m) = Ok m)
  in
  List.iter roundtrip [ Search_mode.Seq; Search_mode.Inc; Search_mode.Par 2; Search_mode.Par 7 ];
  Alcotest.(check bool) "par defaults domains" true
    (Search_mode.of_string "par" = Ok (Search_mode.Par Search_mode.default_domains));
  List.iter
    (fun s ->
      match Search_mode.of_string s with
      | Ok _ -> Alcotest.failf "%S must be rejected" s
      | Error _ -> ())
    [ "warp"; "par:0"; "par:-1"; "par:x"; "" ]

(* ------------------------------------------------------------------ *)
(* Budget: fork, merge, cancel *)

let test_budget_fork_allowance () =
  let parent = Budget.create ~max_steps:100 () in
  for _ = 1 to 30 do
    Budget.tick parent
  done;
  let child = Budget.fork ~extra_steps:20 parent in
  (* allowance = 100 − 30 − 20 = 50: 49 ticks pass, the 50th trips *)
  for _ = 1 to 49 do
    Budget.tick child
  done;
  (match Budget.tick child with
   | () -> Alcotest.fail "child must stop at the remaining allowance"
   | exception Budget.Exhausted Budget.Step_limit -> ()
   | exception Budget.Exhausted _ -> Alcotest.fail "wrong exhaustion reason");
  Budget.add_steps parent (Budget.steps child);
  Alcotest.(check int) "children steps folded back" 80 (Budget.steps parent)

let test_budget_fork_cancel () =
  let stop = Atomic.make false in
  let child = Budget.fork ~cancel:stop Budget.unlimited in
  Budget.check_now child;
  Atomic.set stop true;
  (match Budget.check_now child with
   | () -> Alcotest.fail "tripped stop flag must cancel the child"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  (* the parent's own flags are inherited too *)
  let flagged = Budget.create ~cancel:(Atomic.make true) () in
  match Budget.check_now (Budget.fork flagged) with
  | () -> Alcotest.fail "parent cancel flag must propagate to forks"
  | exception Budget.Exhausted Budget.Cancelled -> ()

(* Shared-counter families: the cap binds the family total exactly,
   whichever child performs the tick — the par-mode fix for concurrent
   branches collectively overshooting [step_cap] between job-end
   merges. *)
let test_budget_fork_shared_cap () =
  let parent = Budget.create ~max_steps:100 () in
  for _ = 1 to 10 do
    Budget.tick parent
  done;
  let shared = Atomic.make 0 in
  let a = Budget.fork_shared ~shared parent in
  let b = Budget.fork_shared ~shared parent in
  (* alternate ticks: the 90th family tick must trip, not the 90th of
     either child *)
  (match
     for i = 1 to 200 do
       Budget.tick (if i land 1 = 0 then a else b)
     done
   with
   | () -> Alcotest.fail "shared family must stop at the parent's allowance"
   | exception Budget.Exhausted Budget.Step_limit -> ());
  Alcotest.(check int) "family total is exactly the allowance" 90
    (Atomic.get shared);
  Budget.add_steps parent (min (Atomic.get shared) (Budget.remaining parent));
  Alcotest.(check int) "fold lands exactly on the cap" 100 (Budget.steps parent);
  Alcotest.(check int) "nothing left to fold" 0 (Budget.remaining parent)

(* ------------------------------------------------------------------ *)
(* Satellite regression: duplicated physically-shared atoms.

   [remove_one] must drop exactly one occurrence of the chosen atom;
   the old [List.filter (fun x -> x != a)] dropped every shared copy,
   so a tableau listing the same atom value twice instantiated it only
   once.  The duplicate instantiation is deterministic (same variable),
   so the visible difference is the per-candidate step count. *)

let dup_schema = Schema.make [ Schema.relation "R" [ Schema.attribute "x" ] ]
let no_master = Database.empty (Schema.make [])

let tableau_of atoms =
  let q = Cq.make ~head:[ v "x" ] atoms in
  match Tableau.of_cq dup_schema q with
  | Some t -> t
  | None -> Alcotest.fail "tableau construction failed"

let adom_for tab =
  Adom.build ~master:no_master ~cc_constants:[] ~query_constants:[]
    ~fresh_count:(List.length (Tableau.vars tab)) ()

let steps_for atoms =
  let tab = tableau_of atoms in
  let budget = Budget.create ~max_steps:1_000_000 () in
  ignore
    (Valuation_search.iter_valid ~budget ~master:no_master ~ccs:[] ~mode:`Delta_only
       ~adom:(adom_for tab) tab (fun _ _ -> false));
  Budget.steps budget

let test_duplicate_shared_atoms () =
  let a = Atom.make "R" [ v "x" ] in
  let single = steps_for [ a ] in
  let dup = steps_for [ a; a ] (* the same physical atom, twice *) in
  Alcotest.(check bool)
    (Printf.sprintf "both copies are instantiated (%d > %d steps)" dup single)
    true (dup > single)

(* ------------------------------------------------------------------ *)
(* Satellite regression: budgets are checked at search entry, so a
   pre-tripped cancel flag (or an already-expired deadline, the
   [timeout_ms = 0] case) aborts before any work — not after the first
   256-step polling stride. *)

let tripped () = Budget.create ~cancel:(Atomic.make true) ()

let test_entry_check_iter_valid () =
  let tab = tableau_of [ Atom.make "R" [ v "x" ] ] in
  let visits = ref 0 in
  (match
     Valuation_search.iter_valid ~budget:(tripped ()) ~master:no_master ~ccs:[]
       ~mode:`Delta_only ~adom:(adom_for tab) tab
       (fun _ _ ->
         incr visits;
         false)
   with
   | (_ : bool) -> Alcotest.fail "pre-tripped cancel must abort the search"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  Alcotest.(check int) "no valuation visited" 0 !visits

let test_entry_check_deciders () =
  let q = Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x" ] ]) in
  let db = Database.empty dup_schema in
  let stats = ref { Rcdp.valuations_visited = 0; branches_pruned = 0 } in
  (match
     Rcdp.decide ~clock:(tripped ()) ~collect_stats:stats ~schema:dup_schema
       ~master:no_master ~ccs:[] ~db q
   with
   | (_ : Rcdp.verdict) -> Alcotest.fail "rcdp must abort on a tripped clock"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  Alcotest.(check int) "rcdp visited nothing" 0 !stats.Rcdp.valuations_visited;
  (match Rcqp.decide ~clock:(tripped ()) ~schema:dup_schema ~master:no_master ~ccs:[] q with
   | (_ : Rcqp.verdict) -> Alcotest.fail "rcqp must abort on a tripped clock"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  (* timeout_ms = 0: the deadline is already over at entry *)
  let expired = Budget.create ~deadline_after:(-1.0) () in
  match
    Rcdp.decide ~clock:expired ~schema:dup_schema ~master:no_master ~ccs:[] ~db q
  with
  | (_ : Rcdp.verdict) -> Alcotest.fail "rcdp must abort on an expired deadline"
  | exception Budget.Exhausted Budget.Deadline -> ()

(* ------------------------------------------------------------------ *)
(* Incremental checker: differential against Containment.holds_all
   over random single-tuple growth chains.  The chain starts from the
   empty database (the checker's [empty_ok] parent invariant) and only
   keeps tuples the full check accepts, mirroring the search. *)

let inc_schema =
  Schema.make
    [
      Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ];
      Schema.relation "S" [ Schema.attribute "a" ];
    ]

let inc_master =
  Database.of_list
    (Schema.make
       [
         Schema.relation "M" [ Schema.attribute "a"; Schema.attribute "b" ];
         Schema.relation "N" [ Schema.attribute "a" ];
       ])
    [
      ("M", Relation.of_str_rows [ [ "0"; "0" ]; [ "0"; "1" ]; [ "1"; "2" ]; [ "2"; "2" ] ]);
      ("N", Relation.of_str_rows [ [ "0" ]; [ "1" ] ]);
    ]

let inc_ccs =
  [
    (* plain bound: R ⊆ M *)
    Containment.make ~name:"rm"
      (Lang.Q_cq (Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "R" [ v "x"; v "y" ] ]))
      (Projection.proj "M" [ 0; 1 ]);
    (* join through both relations: R(x,y), S(y) ⇒ y ∈ N *)
    Containment.make ~name:"join"
      (Lang.Q_cq
         (Cq.make ~head:[ v "y" ]
            [ Atom.make "R" [ v "x"; v "y" ]; Atom.make "S" [ v "y" ] ]))
      (Projection.proj "N" [ 0 ]);
    (* inequality + empty RHS: no R tuple may repeat S's value twice *)
    Containment.make ~name:"neq"
      (Lang.Q_cq
         (Cq.make
            ~neqs:[ (v "x", v "y") ]
            ~head:[ v "x" ]
            [ Atom.make "R" [ v "x"; v "x" ]; Atom.make "S" [ v "y" ] ]))
      Projection.Empty;
    (* constant selection: S("3") is forbidden *)
    Containment.make ~name:"const"
      (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x" ]; Atom.make "S" [ Term.str "3" ] ]))
      Projection.Empty;
  ]

let incremental_agrees_prop adds =
  let inc = Incremental.create ~schema:inc_schema ~master:inc_master inc_ccs in
  if not (Incremental.empty_ok inc) then
    QCheck2.Test.fail_report "empty database must satisfy the test constraints";
  let db = ref (Database.empty inc_schema) in
  List.iter
    (fun (pick, a, b) ->
      let rel, tuple =
        if pick land 1 = 0 then
          ("R", Tuple.of_strs [ string_of_int a; string_of_int b ])
        else ("S", Tuple.of_strs [ string_of_int a ])
      in
      let grown = Database.add_tuple !db rel tuple in
      let fast = Incremental.check_add inc ~db:grown ~rel ~tuple in
      let slow = Containment.holds_all ~db:grown ~master:inc_master inc_ccs in
      if fast <> slow then
        QCheck2.Test.fail_reportf "check_add %s%s: incremental %b vs full %b" rel
          (Format.asprintf "%a" Tuple.pp tuple) fast slow;
      if Incremental.full inc ~db:grown <> slow then
        QCheck2.Test.fail_reportf "full check diverges on %s%s" rel
          (Format.asprintf "%a" Tuple.pp tuple);
      (* keep only accepted tuples: the parent invariant of the next step *)
      if slow then db := grown)
    adds;
  true

let test_incremental_differential =
  QCheck2.Test.make ~name:"incremental check_add ≡ holds_all on growth chains"
    ~count:200
    QCheck2.Gen.(list_size (int_bound 12) (triple (int_bound 7) (int_bound 3) (int_bound 3)))
    incremental_agrees_prop

(* ------------------------------------------------------------------ *)
(* seq / inc / par verdict agreement on every scenario file *)

let scenarios_dir () =
  if Sys.file_exists "../../../scenarios" then "../../../scenarios" else "scenarios"

let rcdp_label ~search (s : Scenario.t) q =
  let clock = Budget.create ~max_steps:60_000 () in
  match
    Rcdp.decide ~clock ~search ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
  with
  | Rcdp.Complete -> "complete"
  | Rcdp.Incomplete _ -> "incomplete"
  | exception Rcdp.Unsupported _ -> "unsupported"
  | exception Rcdp.Not_partially_closed _ -> "not_partially_closed"
  | exception Budget.Exhausted reason -> "timeout:" ^ Budget.reason_name reason

let test_modes_agree_on_scenarios () =
  let dir = scenarios_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ric")
    |> List.sort compare
  in
  Alcotest.(check bool) "found scenario files" true (files <> []);
  List.iter
    (fun file ->
      let s = Scenario.load (Filename.concat dir file) in
      List.iter
        (fun (qname, q) ->
          let seq = rcdp_label ~search:Search_mode.Seq s q in
          let inc = rcdp_label ~search:Search_mode.Inc s q in
          let par = rcdp_label ~search:(Search_mode.Par 4) s q in
          Alcotest.(check string) (Printf.sprintf "%s/%s inc" file qname) seq inc;
          Alcotest.(check string) (Printf.sprintf "%s/%s par" file qname) seq par)
        s.Scenario.queries)
    files

(* Exactly-once fork accounting: a complete verdict explores the whole
   valuation space in every mode, and each child step must reach the
   parent clock exactly once — so the par totals equal the seq total
   (a double merge would inflate them, a lost child would deflate
   them), and the partition width must not change the sum. *)
let test_par_step_accounting () =
  let dir = scenarios_dir () in
  let s = Scenario.load (Filename.concat dir "crm.ric") in
  let q =
    match Scenario.find_query s "Q2" with
    | Some q -> q
    | None -> Alcotest.fail "crm.ric lost its Q2 query"
  in
  let steps_in ~search =
    let clock = Budget.create ~max_steps:1_000_000 () in
    (match
       Rcdp.decide ~clock ~search ~schema:s.Scenario.db_schema
         ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
     with
     | Rcdp.Complete -> ()
     | Rcdp.Incomplete _ -> Alcotest.fail "Q2 must be complete (full exploration)");
    Budget.steps clock
  in
  let seq = steps_in ~search:Search_mode.Seq in
  Alcotest.(check bool) "seq run ticked" true (seq > 0);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "par:%d step total equals seq" n)
        seq
        (steps_in ~search:(Search_mode.Par n)))
    [ 2; 3; 4 ]

(* the incomplete case: a parallel first witness must terminate the
   search with the same verdict class, and the counterexample must
   revalidate like any sequential one *)
let test_par_witness_is_valid () =
  let dir = scenarios_dir () in
  let s = Scenario.load (Filename.concat dir "crm.ric") in
  List.iter
    (fun (qname, q) ->
      match
        Rcdp.decide ~search:(Search_mode.Par 4) ~schema:s.Scenario.db_schema
          ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
      with
      | Rcdp.Complete -> ()
      | Rcdp.Incomplete cex ->
        let extended = Database.union s.Scenario.db cex.Rcdp.cex_extension in
        Alcotest.(check bool)
          (qname ^ ": extension is admissible")
          true
          (Containment.holds_all ~db:extended ~master:s.Scenario.master
             (Scenario.all_ccs s));
        Alcotest.(check bool)
          (qname ^ ": answer is new")
          true
          (Relation.mem cex.Rcdp.cex_answer (Lang.eval extended q)
          && not (Relation.mem cex.Rcdp.cex_answer (Lang.eval s.Scenario.db q)))
      | exception Rcdp.Unsupported _ -> ())
    s.Scenario.queries

(* ------------------------------------------------------------------ *)
(* The work-stealing engine with real worker domains.  The default
   clamp would collapse to one worker on a small CI host, silently
   skipping every concurrency path — RIC_SEARCH_FORCE_WORKERS un-clamps
   it for the duration of a callback. *)

let with_forced_workers n f =
  Unix.putenv "RIC_SEARCH_FORCE_WORKERS" (string_of_int n);
  Fun.protect
    ~finally:(fun () -> Unix.putenv "RIC_SEARCH_FORCE_WORKERS" "")
    f

(* forced-domain variant of the exactly-once accounting test: the
   frontier tasks partition the sequential tree, so even with real
   concurrent workers the family's shared step total must equal the
   sequential total on a fully explored (Complete) instance *)
let test_par_step_accounting_forced () =
  let dir = scenarios_dir () in
  let s = Scenario.load (Filename.concat dir "crm.ric") in
  let q =
    match Scenario.find_query s "Q2" with
    | Some q -> q
    | None -> Alcotest.fail "crm.ric lost its Q2 query"
  in
  let steps_in ~search =
    let clock = Budget.create ~max_steps:1_000_000 () in
    (match
       Rcdp.decide ~clock ~search ~schema:s.Scenario.db_schema
         ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
     with
     | Rcdp.Complete -> ()
     | Rcdp.Incomplete _ -> Alcotest.fail "Q2 must be complete (full exploration)");
    Budget.steps clock
  in
  let seq = steps_in ~search:Search_mode.Seq in
  List.iter
    (fun n ->
      with_forced_workers n (fun () ->
        Alcotest.(check int)
          (Printf.sprintf "forced par:%d step total equals seq" n)
          seq
          (steps_in ~search:(Search_mode.Par n))))
    [ 2; 3 ]

(* a degenerate instance — every variable has a single candidate — has
   no level to split on; par must degrade to the sequential engine
   (same result, no stealing, no hang) even with forced workers *)
let test_par_degenerate_falls_back () =
  let m_steals =
    Ric_obs.Metrics.counter
      ~help:"frontier tasks popped by a worker other than their producer"
      "ric_search_steal_total"
  in
  let tab = tableau_of [ Atom.make "R" [ v "x" ] ] in
  let adom =
    Adom.build ~master:no_master ~cc_constants:[] ~query_constants:[]
      ~fresh_count:1 ()
  in
  with_forced_workers 4 (fun () ->
    let steals0 = Ric_obs.Metrics.counter_value m_steals in
    let seq_visits = ref 0 in
    ignore
      (Valuation_search.iter_valid ~master:no_master ~ccs:[] ~mode:`Delta_only
         ~adom tab (fun _ _ ->
           incr seq_visits;
           false));
    let par_visits = ref 0 in
    ignore
      (Valuation_search.iter_valid_par ~domains:4 ~master:no_master ~ccs:[]
         ~mode:`Delta_only ~adom tab (fun _ _ ->
           incr par_visits;
           false));
    Alcotest.(check int) "same visits as seq" !seq_visits !par_visits;
    Alcotest.(check int) "no candidate to split: zero steals" steals0
      (Ric_obs.Metrics.counter_value m_steals))

(* ------------------------------------------------------------------ *)
(* QCheck differential: random instances × forced par:1..8 vs seq.

   The parallel tree is node-for-node the sequential tree, so on an
   uncapped run the verdicts must be identical.  Under a tiny step cap
   the *exploration order* differs, so a run that times out under seq
   may legitimately find a witness under par (and vice versa) — but
   completes must still coincide, a timeout may never be reported with
   more steps than the cap, and an impossible pairing (one side fully
   explores and reports complete, the other claims a witness) is a
   bug. *)

let random_instance seed =
  let open Ric_workloads in
  let cfg =
    { Random_gen.seed; relations = 2; arity = 2; tuples = 3; domain = 3 }
  in
  let schema = Random_gen.schema cfg in
  let db = Random_gen.database cfg in
  let master = Random_gen.master_of cfg db in
  let ccs = List.map (Ind.to_cc schema) (Random_gen.inds cfg) in
  (cfg, schema, db, master, ccs)

let decide_steps ~cap ~search ~workers (schema, db, master, ccs, q) =
  with_forced_workers workers (fun () ->
    let clock = Budget.create ~max_steps:cap () in
    let label =
      match Rcdp.decide ~clock ~search ~schema ~master ~ccs ~db q with
      | Rcdp.Complete -> "complete"
      | Rcdp.Incomplete _ -> "incomplete"
      | exception Rcdp.Unsupported _ -> "unsupported"
      | exception Rcdp.Not_partially_closed _ -> "not_partially_closed"
      | exception Budget.Exhausted reason -> "timeout:" ^ Budget.reason_name reason
    in
    (label, Budget.steps clock))

let par_matches_seq_prop (seed, atoms, wsel, tight) =
  let open Ric_workloads in
  let (cfg, schema, db, master, ccs) = random_instance seed in
  let q = Lang.Q_cq (Random_gen.random_cq cfg ~atoms:(1 + (atoms mod 3))) in
  let inst = (schema, db, master, ccs, q) in
  let workers = 1 + (wsel mod 8) in
  let cap = if tight then 400 else 300_000 in
  let (seq_label, seq_steps) =
    decide_steps ~cap ~search:Search_mode.Seq ~workers:1 inst
  in
  let (par_label, par_steps) =
    decide_steps ~cap ~search:(Search_mode.Par workers) ~workers inst
  in
  if seq_steps > cap then
    QCheck2.Test.fail_reportf "seq reported %d steps over cap %d" seq_steps cap;
  if par_steps > cap then
    QCheck2.Test.fail_reportf "par:%d reported %d steps over cap %d" workers
      par_steps cap;
  let timeout l = String.length l >= 7 && String.sub l 0 7 = "timeout" in
  let compatible =
    seq_label = par_label
    || (timeout seq_label && par_label = "incomplete")
    || (timeout par_label && seq_label = "incomplete")
  in
  if not compatible then
    QCheck2.Test.fail_reportf "par:%d %s vs seq %s (cap %d)" workers par_label
      seq_label cap;
  (* with a generous cap the exploration completes and the order cannot
     matter: demand exact agreement *)
  if (not tight) && seq_label <> par_label then
    QCheck2.Test.fail_reportf "uncapped par:%d %s vs seq %s" workers par_label
      seq_label;
  true

let test_par_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random instances × forced par:1..8 ≡ seq"
       ~count:30
       QCheck2.Gen.(
         quad (int_bound 1000) (int_bound 2) (int_bound 7) bool)
       par_matches_seq_prop)

(* ------------------------------------------------------------------ *)
(* Crash injection: a worker crash mid-task is retried once (one
   injected crash must not change the verdict); a permanent crash
   surfaces as the injected error from the coordinator — a structured
   reply at the service layer — and never hangs. *)

exception Injected

let test_par_crash_paths () =
  let dir = scenarios_dir () in
  let s = Scenario.load (Filename.concat dir "crm.ric") in
  let q =
    match Scenario.find_query s "Q2" with
    | Some q -> q
    | None -> Alcotest.fail "crm.ric lost its Q2 query"
  in
  let decide ~search =
    Rcdp.decide ~search ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
  in
  let expected = decide ~search:Search_mode.Seq in
  with_forced_workers 2 (fun () ->
    Fun.protect
      ~finally:(fun () -> Valuation_search.set_fault_hook ignore)
      (fun () ->
        (* one crash, absorbed by the retry *)
        let armed = Atomic.make true in
        Valuation_search.set_fault_hook (fun () ->
          if Atomic.exchange armed false then raise Injected);
        Alcotest.(check bool) "one crash leaves the verdict intact" true
          (decide ~search:(Search_mode.Par 2) = expected);
        Alcotest.(check bool) "the crash really fired" false (Atomic.get armed);
        (* permanent crash: the retry fails too, the error propagates *)
        Valuation_search.set_fault_hook (fun () -> raise Injected);
        match decide ~search:(Search_mode.Par 2) with
        | (_ : Rcdp.verdict) ->
          Alcotest.fail "permanent crash must not produce a verdict"
        | exception Injected -> ()))

let () =
  Alcotest.run "search"
    [
      ( "search mode",
        [ Alcotest.test_case "parse / print" `Quick test_search_mode_strings ] );
      ( "budget",
        [
          Alcotest.test_case "fork allowance + merge" `Quick test_budget_fork_allowance;
          Alcotest.test_case "fork cancel flags" `Quick test_budget_fork_cancel;
          Alcotest.test_case "shared family cap is exact" `Quick test_budget_fork_shared_cap;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "duplicate shared atoms" `Quick test_duplicate_shared_atoms;
          Alcotest.test_case "entry check: iter_valid" `Quick test_entry_check_iter_valid;
          Alcotest.test_case "entry check: deciders" `Quick test_entry_check_deciders;
        ] );
      ( "incremental",
        [ QCheck_alcotest.to_alcotest test_incremental_differential ] );
      ( "mode agreement",
        [
          Alcotest.test_case "all scenarios, all modes" `Quick test_modes_agree_on_scenarios;
          Alcotest.test_case "par step totals equal seq" `Quick test_par_step_accounting;
          Alcotest.test_case "par witness revalidates" `Quick test_par_witness_is_valid;
        ] );
      ( "work stealing",
        [
          Alcotest.test_case "forced domains keep step parity" `Quick
            test_par_step_accounting_forced;
          Alcotest.test_case "degenerate split falls back to seq" `Quick
            test_par_degenerate_falls_back;
          test_par_differential;
          Alcotest.test_case "crash retry and permanent crash" `Quick
            test_par_crash_paths;
        ] );
    ]
