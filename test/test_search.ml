(* Tests for the valuation-search performance layer: Search_mode
   parsing, Budget fork/merge/cancel, the incremental constraint
   checker (differential against Containment.holds_all), seq/inc/par
   verdict agreement on every scenario file, and the satellite
   regressions — duplicate-atom removal (remove one occurrence, not
   every physically-shared copy) and budget checks at search entry. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
module Scenario = Ric_text.Scenario

let v = Term.var

(* ------------------------------------------------------------------ *)
(* Search_mode *)

let test_search_mode_strings () =
  let roundtrip m =
    Alcotest.(check bool)
      (Search_mode.to_string m ^ " round trips")
      true
      (Search_mode.of_string (Search_mode.to_string m) = Ok m)
  in
  List.iter roundtrip [ Search_mode.Seq; Search_mode.Inc; Search_mode.Par 2; Search_mode.Par 7 ];
  Alcotest.(check bool) "par defaults domains" true
    (Search_mode.of_string "par" = Ok (Search_mode.Par Search_mode.default_domains));
  List.iter
    (fun s ->
      match Search_mode.of_string s with
      | Ok _ -> Alcotest.failf "%S must be rejected" s
      | Error _ -> ())
    [ "warp"; "par:0"; "par:-1"; "par:x"; "" ]

(* ------------------------------------------------------------------ *)
(* Budget: fork, merge, cancel *)

let test_budget_fork_allowance () =
  let parent = Budget.create ~max_steps:100 () in
  for _ = 1 to 30 do
    Budget.tick parent
  done;
  let child = Budget.fork ~extra_steps:20 parent in
  (* allowance = 100 − 30 − 20 = 50: 49 ticks pass, the 50th trips *)
  for _ = 1 to 49 do
    Budget.tick child
  done;
  (match Budget.tick child with
   | () -> Alcotest.fail "child must stop at the remaining allowance"
   | exception Budget.Exhausted Budget.Step_limit -> ()
   | exception Budget.Exhausted _ -> Alcotest.fail "wrong exhaustion reason");
  Budget.add_steps parent (Budget.steps child);
  Alcotest.(check int) "children steps folded back" 80 (Budget.steps parent)

let test_budget_fork_cancel () =
  let stop = Atomic.make false in
  let child = Budget.fork ~cancel:stop Budget.unlimited in
  Budget.check_now child;
  Atomic.set stop true;
  (match Budget.check_now child with
   | () -> Alcotest.fail "tripped stop flag must cancel the child"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  (* the parent's own flags are inherited too *)
  let flagged = Budget.create ~cancel:(Atomic.make true) () in
  match Budget.check_now (Budget.fork flagged) with
  | () -> Alcotest.fail "parent cancel flag must propagate to forks"
  | exception Budget.Exhausted Budget.Cancelled -> ()

(* ------------------------------------------------------------------ *)
(* Satellite regression: duplicated physically-shared atoms.

   [remove_one] must drop exactly one occurrence of the chosen atom;
   the old [List.filter (fun x -> x != a)] dropped every shared copy,
   so a tableau listing the same atom value twice instantiated it only
   once.  The duplicate instantiation is deterministic (same variable),
   so the visible difference is the per-candidate step count. *)

let dup_schema = Schema.make [ Schema.relation "R" [ Schema.attribute "x" ] ]
let no_master = Database.empty (Schema.make [])

let tableau_of atoms =
  let q = Cq.make ~head:[ v "x" ] atoms in
  match Tableau.of_cq dup_schema q with
  | Some t -> t
  | None -> Alcotest.fail "tableau construction failed"

let adom_for tab =
  Adom.build ~master:no_master ~cc_constants:[] ~query_constants:[]
    ~fresh_count:(List.length (Tableau.vars tab)) ()

let steps_for atoms =
  let tab = tableau_of atoms in
  let budget = Budget.create ~max_steps:1_000_000 () in
  ignore
    (Valuation_search.iter_valid ~budget ~master:no_master ~ccs:[] ~mode:`Delta_only
       ~adom:(adom_for tab) tab (fun _ _ -> false));
  Budget.steps budget

let test_duplicate_shared_atoms () =
  let a = Atom.make "R" [ v "x" ] in
  let single = steps_for [ a ] in
  let dup = steps_for [ a; a ] (* the same physical atom, twice *) in
  Alcotest.(check bool)
    (Printf.sprintf "both copies are instantiated (%d > %d steps)" dup single)
    true (dup > single)

(* ------------------------------------------------------------------ *)
(* Satellite regression: budgets are checked at search entry, so a
   pre-tripped cancel flag (or an already-expired deadline, the
   [timeout_ms = 0] case) aborts before any work — not after the first
   256-step polling stride. *)

let tripped () = Budget.create ~cancel:(Atomic.make true) ()

let test_entry_check_iter_valid () =
  let tab = tableau_of [ Atom.make "R" [ v "x" ] ] in
  let visits = ref 0 in
  (match
     Valuation_search.iter_valid ~budget:(tripped ()) ~master:no_master ~ccs:[]
       ~mode:`Delta_only ~adom:(adom_for tab) tab
       (fun _ _ ->
         incr visits;
         false)
   with
   | (_ : bool) -> Alcotest.fail "pre-tripped cancel must abort the search"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  Alcotest.(check int) "no valuation visited" 0 !visits

let test_entry_check_deciders () =
  let q = Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x" ] ]) in
  let db = Database.empty dup_schema in
  let stats = ref { Rcdp.valuations_visited = 0; branches_pruned = 0 } in
  (match
     Rcdp.decide ~clock:(tripped ()) ~collect_stats:stats ~schema:dup_schema
       ~master:no_master ~ccs:[] ~db q
   with
   | (_ : Rcdp.verdict) -> Alcotest.fail "rcdp must abort on a tripped clock"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  Alcotest.(check int) "rcdp visited nothing" 0 !stats.Rcdp.valuations_visited;
  (match Rcqp.decide ~clock:(tripped ()) ~schema:dup_schema ~master:no_master ~ccs:[] q with
   | (_ : Rcqp.verdict) -> Alcotest.fail "rcqp must abort on a tripped clock"
   | exception Budget.Exhausted Budget.Cancelled -> ());
  (* timeout_ms = 0: the deadline is already over at entry *)
  let expired = Budget.create ~deadline_after:(-1.0) () in
  match
    Rcdp.decide ~clock:expired ~schema:dup_schema ~master:no_master ~ccs:[] ~db q
  with
  | (_ : Rcdp.verdict) -> Alcotest.fail "rcdp must abort on an expired deadline"
  | exception Budget.Exhausted Budget.Deadline -> ()

(* ------------------------------------------------------------------ *)
(* Incremental checker: differential against Containment.holds_all
   over random single-tuple growth chains.  The chain starts from the
   empty database (the checker's [empty_ok] parent invariant) and only
   keeps tuples the full check accepts, mirroring the search. *)

let inc_schema =
  Schema.make
    [
      Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b" ];
      Schema.relation "S" [ Schema.attribute "a" ];
    ]

let inc_master =
  Database.of_list
    (Schema.make
       [
         Schema.relation "M" [ Schema.attribute "a"; Schema.attribute "b" ];
         Schema.relation "N" [ Schema.attribute "a" ];
       ])
    [
      ("M", Relation.of_str_rows [ [ "0"; "0" ]; [ "0"; "1" ]; [ "1"; "2" ]; [ "2"; "2" ] ]);
      ("N", Relation.of_str_rows [ [ "0" ]; [ "1" ] ]);
    ]

let inc_ccs =
  [
    (* plain bound: R ⊆ M *)
    Containment.make ~name:"rm"
      (Lang.Q_cq (Cq.make ~head:[ v "x"; v "y" ] [ Atom.make "R" [ v "x"; v "y" ] ]))
      (Projection.proj "M" [ 0; 1 ]);
    (* join through both relations: R(x,y), S(y) ⇒ y ∈ N *)
    Containment.make ~name:"join"
      (Lang.Q_cq
         (Cq.make ~head:[ v "y" ]
            [ Atom.make "R" [ v "x"; v "y" ]; Atom.make "S" [ v "y" ] ]))
      (Projection.proj "N" [ 0 ]);
    (* inequality + empty RHS: no R tuple may repeat S's value twice *)
    Containment.make ~name:"neq"
      (Lang.Q_cq
         (Cq.make
            ~neqs:[ (v "x", v "y") ]
            ~head:[ v "x" ]
            [ Atom.make "R" [ v "x"; v "x" ]; Atom.make "S" [ v "y" ] ]))
      Projection.Empty;
    (* constant selection: S("3") is forbidden *)
    Containment.make ~name:"const"
      (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "S" [ v "x" ]; Atom.make "S" [ Term.str "3" ] ]))
      Projection.Empty;
  ]

let incremental_agrees_prop adds =
  let inc = Incremental.create ~schema:inc_schema ~master:inc_master inc_ccs in
  if not (Incremental.empty_ok inc) then
    QCheck2.Test.fail_report "empty database must satisfy the test constraints";
  let db = ref (Database.empty inc_schema) in
  List.iter
    (fun (pick, a, b) ->
      let rel, tuple =
        if pick land 1 = 0 then
          ("R", Tuple.of_strs [ string_of_int a; string_of_int b ])
        else ("S", Tuple.of_strs [ string_of_int a ])
      in
      let grown = Database.add_tuple !db rel tuple in
      let fast = Incremental.check_add inc ~db:grown ~rel ~tuple in
      let slow = Containment.holds_all ~db:grown ~master:inc_master inc_ccs in
      if fast <> slow then
        QCheck2.Test.fail_reportf "check_add %s%s: incremental %b vs full %b" rel
          (Format.asprintf "%a" Tuple.pp tuple) fast slow;
      if Incremental.full inc ~db:grown <> slow then
        QCheck2.Test.fail_reportf "full check diverges on %s%s" rel
          (Format.asprintf "%a" Tuple.pp tuple);
      (* keep only accepted tuples: the parent invariant of the next step *)
      if slow then db := grown)
    adds;
  true

let test_incremental_differential =
  QCheck2.Test.make ~name:"incremental check_add ≡ holds_all on growth chains"
    ~count:200
    QCheck2.Gen.(list_size (int_bound 12) (triple (int_bound 7) (int_bound 3) (int_bound 3)))
    incremental_agrees_prop

(* ------------------------------------------------------------------ *)
(* seq / inc / par verdict agreement on every scenario file *)

let scenarios_dir () =
  if Sys.file_exists "../../../scenarios" then "../../../scenarios" else "scenarios"

let rcdp_label ~search (s : Scenario.t) q =
  let clock = Budget.create ~max_steps:60_000 () in
  match
    Rcdp.decide ~clock ~search ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
  with
  | Rcdp.Complete -> "complete"
  | Rcdp.Incomplete _ -> "incomplete"
  | exception Rcdp.Unsupported _ -> "unsupported"
  | exception Rcdp.Not_partially_closed _ -> "not_partially_closed"
  | exception Budget.Exhausted reason -> "timeout:" ^ Budget.reason_name reason

let test_modes_agree_on_scenarios () =
  let dir = scenarios_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ric")
    |> List.sort compare
  in
  Alcotest.(check bool) "found scenario files" true (files <> []);
  List.iter
    (fun file ->
      let s = Scenario.load (Filename.concat dir file) in
      List.iter
        (fun (qname, q) ->
          let seq = rcdp_label ~search:Search_mode.Seq s q in
          let inc = rcdp_label ~search:Search_mode.Inc s q in
          let par = rcdp_label ~search:(Search_mode.Par 4) s q in
          Alcotest.(check string) (Printf.sprintf "%s/%s inc" file qname) seq inc;
          Alcotest.(check string) (Printf.sprintf "%s/%s par" file qname) seq par)
        s.Scenario.queries)
    files

(* Exactly-once fork accounting: a complete verdict explores the whole
   valuation space in every mode, and each child step must reach the
   parent clock exactly once — so the par totals equal the seq total
   (a double merge would inflate them, a lost child would deflate
   them), and the partition width must not change the sum. *)
let test_par_step_accounting () =
  let dir = scenarios_dir () in
  let s = Scenario.load (Filename.concat dir "crm.ric") in
  let q =
    match Scenario.find_query s "Q2" with
    | Some q -> q
    | None -> Alcotest.fail "crm.ric lost its Q2 query"
  in
  let steps_in ~search =
    let clock = Budget.create ~max_steps:1_000_000 () in
    (match
       Rcdp.decide ~clock ~search ~schema:s.Scenario.db_schema
         ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
     with
     | Rcdp.Complete -> ()
     | Rcdp.Incomplete _ -> Alcotest.fail "Q2 must be complete (full exploration)");
    Budget.steps clock
  in
  let seq = steps_in ~search:Search_mode.Seq in
  Alcotest.(check bool) "seq run ticked" true (seq > 0);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "par:%d step total equals seq" n)
        seq
        (steps_in ~search:(Search_mode.Par n)))
    [ 2; 3; 4 ]

(* the incomplete case: a parallel first witness must terminate the
   search with the same verdict class, and the counterexample must
   revalidate like any sequential one *)
let test_par_witness_is_valid () =
  let dir = scenarios_dir () in
  let s = Scenario.load (Filename.concat dir "crm.ric") in
  List.iter
    (fun (qname, q) ->
      match
        Rcdp.decide ~search:(Search_mode.Par 4) ~schema:s.Scenario.db_schema
          ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
      with
      | Rcdp.Complete -> ()
      | Rcdp.Incomplete cex ->
        let extended = Database.union s.Scenario.db cex.Rcdp.cex_extension in
        Alcotest.(check bool)
          (qname ^ ": extension is admissible")
          true
          (Containment.holds_all ~db:extended ~master:s.Scenario.master
             (Scenario.all_ccs s));
        Alcotest.(check bool)
          (qname ^ ": answer is new")
          true
          (Relation.mem cex.Rcdp.cex_answer (Lang.eval extended q)
          && not (Relation.mem cex.Rcdp.cex_answer (Lang.eval s.Scenario.db q)))
      | exception Rcdp.Unsupported _ -> ())
    s.Scenario.queries

let () =
  Alcotest.run "search"
    [
      ( "search mode",
        [ Alcotest.test_case "parse / print" `Quick test_search_mode_strings ] );
      ( "budget",
        [
          Alcotest.test_case "fork allowance + merge" `Quick test_budget_fork_allowance;
          Alcotest.test_case "fork cancel flags" `Quick test_budget_fork_cancel;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "duplicate shared atoms" `Quick test_duplicate_shared_atoms;
          Alcotest.test_case "entry check: iter_valid" `Quick test_entry_check_iter_valid;
          Alcotest.test_case "entry check: deciders" `Quick test_entry_check_deciders;
        ] );
      ( "incremental",
        [ QCheck_alcotest.to_alcotest test_incremental_differential ] );
      ( "mode agreement",
        [
          Alcotest.test_case "all scenarios, all modes" `Quick test_modes_agree_on_scenarios;
          Alcotest.test_case "par step totals equal seq" `Quick test_par_step_accounting;
          Alcotest.test_case "par witness revalidates" `Quick test_par_witness_is_valid;
        ] );
    ]
