(* Tests for the ricd service subsystem: wire protocol encoding and
   framing, the worker pool, the session registry + verdict cache
   behind Service.handle, and a full client/server round trip over a
   Unix-domain socket with concurrent sessions. *)

open Ric_service
module Json = Ric_text.Json

(* ------------------------------------------------------------------ *)
(* JSON response plumbing *)

let obj_field k = function Json.Obj fs -> List.assoc_opt k fs | _ -> None

let get k j =
  match obj_field k j with
  | Some v -> v
  | None -> Alcotest.failf "no field %S in %s" k (Json.to_string j)

let get_bool k j =
  match get k j with
  | Json.Bool b -> b
  | _ -> Alcotest.failf "field %S is not a bool in %s" k (Json.to_string j)

let get_int k j =
  match get k j with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %S is not an int in %s" k (Json.to_string j)

let get_str k j =
  match get k j with
  | Json.Str s -> s
  | _ -> Alcotest.failf "field %S is not a string in %s" k (Json.to_string j)

let assert_ok j =
  if not (get_bool "ok" j) then Alcotest.failf "request failed: %s" (Json.to_string j)

let verdict_of j = get_str "verdict" (get "result" j)

(* ------------------------------------------------------------------ *)
(* The test scenario: Cust/Supt bounded by master data.  Q and QS are
   incomplete (admissible growth exists), QC is complete (no
   admissible extension can add an alice row). *)

let scenario_source =
  {|
  schema Cust(cid, name).
  schema Supt(eid, cid).
  master DCust(cid, name).
  master DEmp(eid).
  rows Cust { (c0, alice) }.
  rows Supt { (e0, c0) }.
  rows DCust { (c0, alice) (c1, bob) (c2, eve) }.
  rows DEmp { (e0) }.
  query Q(c, n) :- Cust(c, n).
  query QS(e, c) :- Supt(e, c).
  query QC(c) :- Cust(c, "alice").
  constraint BC(c, n) :- Cust(c, n) => DCust[0, 1].
  constraint BS(e) :- Supt(e, c) => DEmp[0].
  constraint BS2(c) :- Supt(e, c) => DCust[0].
|}

let open_req ?name source =
  Protocol.Open { path = None; source = Some source; name }

let rcdp ?(nocache = false) ?timeout_ms ?search ?req_id ?(explain = false)
    session query =
  Protocol.Rcdp { session; query; nocache; timeout_ms; search; req_id; explain }

let rcqp ?(nocache = false) ?timeout_ms ?search ?req_id ?(explain = false)
    session query =
  Protocol.Rcqp { session; query; nocache; timeout_ms; search; req_id; explain }

let audit ?(nocache = false) ?timeout_ms ?search ?req_id ?(explain = false)
    session query =
  Protocol.Audit { session; query; nocache; timeout_ms; search; req_id; explain }

let insert session rel rows =
  Protocol.Insert
    {
      session;
      rel;
      rows = List.map (List.map (fun s -> Ric_relational.Value.Str s)) rows;
    }

let insert_bulk session batches =
  Protocol.Insert_bulk
    {
      session;
      batches =
        List.map
          (fun (rel, rows) ->
            (rel, List.map (List.map (fun s -> Ric_relational.Value.Str s)) rows))
          batches;
    }

(* ------------------------------------------------------------------ *)
(* Protocol: request encode/decode round trip *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Shutdown;
      open_req ~name:"crm" "schema R(a).";
      Protocol.Open { path = Some "scenarios/crm.ric"; source = None; name = None };
      rcdp "s1" "Q0";
      rcdp ~nocache:true "s1" "Q0";
      rcdp ~timeout_ms:250 "s1" "Q0";
      rcdp ~search:Ric_complete.Search_mode.Inc "s1" "Q0";
      rcdp ~search:(Ric_complete.Search_mode.Par 4) "s1" "Q0";
      rcdp ~req_id:"ric-1-2-3" ~explain:true "s1" "Q0";
      rcqp "s2" "Q";
      rcqp ~req_id:"x" "s2" "Q";
      rcqp ~search:Ric_complete.Search_mode.Seq "s2" "Q";
      audit "s1" "Q2";
      audit ~search:(Ric_complete.Search_mode.Par 2) "s1" "Q2";
      audit ~req_id:"a-1" ~explain:true "s1" "Q2";
      Protocol.Dump;
      insert "s1" "Cust" [ [ "c1"; "bob" ] ];
      Protocol.Insert
        { session = "s1"; rel = "N"; rows = [ [ Ric_relational.Value.Int 42 ] ] };
      insert_bulk "s1" [ ("Cust", [ [ "c1"; "bob" ]; [ "c2"; "eve" ] ]); ("Supt", [ [ "e0"; "c1" ] ]) ];
      Protocol.Insert_bulk { session = "s1"; batches = [] };
      Protocol.Close { session = "s1" };
    ]
  in
  List.iter
    (fun req ->
      match Protocol.of_json (Protocol.to_json req) with
      | Ok req' ->
        Alcotest.(check bool)
          (Printf.sprintf "%s round trips" (Protocol.op_name req))
          true (req = req')
      | Error m -> Alcotest.failf "%s failed to decode: %s" (Protocol.op_name req) m)
    reqs

let test_protocol_rejects () =
  let bad =
    [
      Json.Int 3;
      Json.Obj [];
      Json.Obj [ ("op", Json.Str "teleport") ];
      Json.Obj [ ("op", Json.Str "rcdp") ];
      Json.Obj [ ("op", Json.Str "rcdp"); ("session", Json.Str "s1") ];
      Json.Obj
        [
          ("op", Json.Str "rcdp");
          ("session", Json.Str "s1");
          ("query", Json.Str "Q0");
          ("search", Json.Str "warp");
        ];
      Json.Obj
        [
          ("op", Json.Str "rcdp");
          ("session", Json.Str "s1");
          ("query", Json.Str "Q0");
          ("search", Json.Int 4);
        ];
      Json.Obj [ ("op", Json.Str "open") ];
      Json.Obj
        [
          ("op", Json.Str "insert");
          ("session", Json.Str "s1");
          ("rel", Json.Str "R");
          ("rows", Json.Str "nope");
        ];
      Json.Obj
        [
          ("op", Json.Str "insert");
          ("session", Json.Str "s1");
          ("rel", Json.Str "R");
          ("rows", Json.List [ Json.List [ Json.Bool true ] ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      match Protocol.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad request %s" (Json.to_string j))
    bad

let test_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payloads = [ "x"; String.make 100_000 'y'; {|{"op":"ping"}|} ] in
  List.iter (Protocol.write_frame a) payloads;
  List.iter
    (fun expected ->
      match Protocol.read_frame b with
      | Some got -> Alcotest.(check string) "frame payload" expected got
      | None -> Alcotest.fail "unexpected EOF")
    payloads;
  Unix.close a;
  (match Protocol.read_frame b with
   | None -> ()
   | Some _ -> Alcotest.fail "expected EOF after close");
  Unix.close b;
  Alcotest.(check bool) "oversized frame refused" true
    (try
       let c, _d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Protocol.write_frame c (String.make (Protocol.max_frame + 1) 'z');
       false
     with Protocol.Frame_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_runs_everything () =
  let counter = Atomic.make 0 in
  let pool =
    Pool.create ~domains:4 ~capacity:8
      ~worker:(fun n ->
        Atomic.set counter (Atomic.get counter + 0);
        ignore (Atomic.fetch_and_add counter n))
      ()
  in
  for _ = 1 to 100 do
    Alcotest.(check bool) "submitted" true (Pool.submit pool 1)
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "all jobs ran" 100 (Atomic.get counter);
  Alcotest.(check bool) "submit after shutdown refused" false (Pool.submit pool 1)

(* ------------------------------------------------------------------ *)
(* Service: sessions, cache, inserts (no sockets involved) *)

let open_session service =
  let r = Service.handle service (open_req scenario_source) in
  assert_ok r;
  get_str "session" r

let test_service_open_and_errors () =
  let service = Service.create () in
  let r = Service.handle service (open_req scenario_source) in
  assert_ok r;
  Alcotest.(check bool) "partially closed" true (get_bool "partially_closed" r);
  Alcotest.(check int) "constraints counted" 3 (get_int "constraints" r);
  (* parse error carries a position *)
  let bad = Service.handle service (open_req "schema R(a.") in
  Alcotest.(check bool) "open rejects bad source" false (get_bool "ok" bad);
  Alcotest.(check string) "kind" "parse_error" (get_str "kind" bad);
  (* unknown session / unknown query *)
  let r = Service.handle service (rcdp "nope" "Q") in
  Alcotest.(check string) "unknown session" "unknown_session" (get_str "kind" r);
  let sid = open_session service in
  let r = Service.handle service (rcdp sid "Zzz") in
  Alcotest.(check string) "unknown query" "unknown_query" (get_str "kind" r);
  Alcotest.(check bool) "error lists queries" true
    (let m = get_str "error" r in
     let contains hay needle =
       let rec go i =
         i + String.length needle <= String.length hay
         && (String.sub hay i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     contains m "QS" && contains m "QC")

let test_service_cache_hit () =
  let service = Service.create () in
  let sid = open_session service in
  let first = Service.handle service (rcdp sid "Q") in
  assert_ok first;
  Alcotest.(check bool) "first is a miss" false (get_bool "cached" first);
  Alcotest.(check string) "Q incomplete" "incomplete" (verdict_of first);
  let second = Service.handle service (rcdp sid "Q") in
  Alcotest.(check bool) "second hits" true (get_bool "cached" second);
  Alcotest.(check string) "same verdict" (Json.to_string (get "result" first))
    (Json.to_string (get "result" second));
  (* nocache bypasses both lookup and store *)
  let third = Service.handle service (rcdp ~nocache:true sid "Q") in
  Alcotest.(check bool) "nocache recomputes" false (get_bool "cached" third)

let test_service_insert_migrates_cache () =
  let service = Service.create () in
  let sid = open_session service in
  let q = Service.handle service (rcdp sid "Q") in
  let qs = Service.handle service (rcdp sid "QS") in
  let qc = Service.handle service (rcdp sid "QC") in
  assert_ok q;
  assert_ok qs;
  assert_ok qc;
  Alcotest.(check string) "Q incomplete" "incomplete" (verdict_of q);
  Alcotest.(check string) "QS incomplete" "incomplete" (verdict_of qs);
  Alcotest.(check string) "QC complete" "complete" (verdict_of qc);
  (* admissible insert: epoch bumps, the cache migrates instead of
     vanishing *)
  let ins = Service.handle service (insert sid "Cust" [ [ "c1"; "bob" ] ]) in
  assert_ok ins;
  Alcotest.(check int) "epoch bumped" 1 (get_int "epoch" ins);
  Alcotest.(check bool) "still closed" true (get_bool "partially_closed" ins);
  let cache = get "cache" ins in
  let carried = get_int "carried" cache
  and revalidated = get_int "revalidated" cache
  and dropped = get_int "dropped" cache in
  (* QC was Complete: monotone carry.  QS's counterexample lives in
     Supt, untouched by a Cust insert: cheap revalidation keeps it.
     Q's counterexample may or may not have been the inserted row. *)
  Alcotest.(check bool) "complete verdict carried" true (carried >= 1);
  Alcotest.(check bool) "incomplete verdict revalidated" true (revalidated >= 1);
  Alcotest.(check int) "all three accounted for" 3 (carried + revalidated + dropped);
  (* the carried entries answer from cache at the new epoch *)
  let qs' = Service.handle service (rcdp sid "QS") in
  Alcotest.(check bool) "QS cached after insert" true (get_bool "cached" qs');
  Alcotest.(check bool) "QS marked revalidated" true (get_bool "revalidated" qs');
  Alcotest.(check int) "QS at new epoch" 1 (get_int "epoch" qs');
  let qc' = Service.handle service (rcdp sid "QC") in
  Alcotest.(check bool) "QC cached after insert" true (get_bool "cached" qc');
  Alcotest.(check string) "QC still complete" "complete" (verdict_of qc')

let test_service_insert_completes_query () =
  (* growing the database to cover all admissible extensions flips the
     fresh verdict to complete *)
  let service = Service.create () in
  let sid = open_session service in
  let q0 = Service.handle service (rcdp sid "Q") in
  Alcotest.(check string) "incomplete at first" "incomplete" (verdict_of q0);
  let ins =
    Service.handle service (insert sid "Cust" [ [ "c1"; "bob" ]; [ "c2"; "eve" ] ])
  in
  assert_ok ins;
  let q1 = Service.handle service (rcdp sid "Q") in
  assert_ok q1;
  (* whatever the cache did, the verdict must now be complete — and if
     it was served from cache it must have been re-proven, which is
     impossible for an incomplete cex once its answer is in D *)
  Alcotest.(check string) "complete after covering inserts" "complete" (verdict_of q1)

let test_service_insert_bulk () =
  let service = Service.create () in
  let sid = open_session service in
  let q0 = Service.handle service (rcdp sid "Q") in
  Alcotest.(check string) "incomplete before" "incomplete" (verdict_of q0);
  let ins =
    Service.handle service
      (insert_bulk sid
         [
           ("Cust", [ [ "c1"; "bob" ] ]);
           ("Cust", [ [ "c2"; "eve" ] ]);
           ("Supt", [ [ "e0"; "c1" ] ]);
         ])
  in
  assert_ok ins;
  Alcotest.(check int) "one epoch bump for the whole batch" 1 (get_int "epoch" ins);
  Alcotest.(check int) "rows counted across batches" 3 (get_int "inserted" ins);
  Alcotest.(check bool) "still partially closed" true (get_bool "partially_closed" ins);
  let q1 = Service.handle service (rcdp sid "Q") in
  Alcotest.(check string) "complete after bulk insert" "complete" (verdict_of q1)

let test_service_insert_bulk_all_or_nothing () =
  let service = Service.create () in
  let sid = open_session service in
  let ins =
    Service.handle service
      (insert_bulk sid [ ("Cust", [ [ "c1"; "bob" ] ]); ("Nope", [ [ "x" ] ]) ])
  in
  Alcotest.(check bool) "rejected" false (get_bool "ok" ins);
  (* the good leading batch rolled back with the bad one: no epoch
     bump, no c1 row *)
  let q = Service.handle service (rcdp sid "Q") in
  assert_ok q;
  Alcotest.(check int) "epoch untouched" 0 (get_int "epoch" q);
  Alcotest.(check string) "still incomplete" "incomplete" (verdict_of q)

let test_service_violating_insert_invalidates () =
  let service = Service.create () in
  let sid = open_session service in
  let q = Service.handle service (rcdp sid "Q") in
  Alcotest.(check string) "incomplete" "incomplete" (verdict_of q);
  (* c9 is not master data: BC breaks *)
  let ins = Service.handle service (insert sid "Cust" [ [ "c9"; "zed" ] ]) in
  assert_ok ins;
  Alcotest.(check bool) "closure lost" false (get_bool "partially_closed" ins);
  Alcotest.(check string) "violated constraint named" "BC"
    (get_str "constraint" (get "violation" ins));
  let cache = get "cache" ins in
  Alcotest.(check int) "nothing carried" 0
    (get_int "carried" cache + get_int "revalidated" cache);
  Alcotest.(check int) "cached verdict invalidated" 1 (get_int "dropped" cache);
  (* the fresh verdict reflects the violation and is not cached *)
  let q' = Service.handle service (rcdp sid "Q") in
  assert_ok q';
  Alcotest.(check bool) "not served from cache" false (get_bool "cached" q');
  Alcotest.(check string) "verdict reflects violation" "not_partially_closed"
    (verdict_of q');
  Alcotest.(check string) "names the constraint" "BC"
    (get_str "constraint" (get "violation" (get "result" q')))

let test_service_rcqp_survives_insert () =
  let service = Service.create () in
  let sid = open_session service in
  let r0 = Service.handle service (rcqp sid "Q") in
  assert_ok r0;
  Alcotest.(check bool) "miss" false (get_bool "cached" r0);
  let _ = Service.handle service (insert sid "Cust" [ [ "c1"; "bob" ] ]) in
  let r1 = Service.handle service (rcqp sid "Q") in
  (* RCQP never reads D: the insert must not evict it *)
  Alcotest.(check bool) "hit across the insert" true (get_bool "cached" r1)

let test_service_audit_cached_and_dropped () =
  let service = Service.create () in
  let sid = open_session service in
  let a0 = Service.handle service (audit sid "Q") in
  assert_ok a0;
  Alcotest.(check string) "completable" "completable" (get_str "audit" (get "result" a0));
  let a1 = Service.handle service (audit sid "Q") in
  Alcotest.(check bool) "audit cached" true (get_bool "cached" a1);
  let _ = Service.handle service (insert sid "Supt" [ [ "e0"; "c1" ] ]) in
  let a2 = Service.handle service (audit sid "Q") in
  (* audits are recomputed after any insert *)
  Alcotest.(check bool) "audit recomputed after insert" false (get_bool "cached" a2)

let test_service_close_purges () =
  let service = Service.create () in
  let sid = open_session service in
  let _ = Service.handle service (rcdp sid "Q") in
  let r = Service.handle service (Protocol.Close { session = sid }) in
  assert_ok r;
  Alcotest.(check bool) "entries purged" true (get_int "purged" r >= 1);
  let r = Service.handle service (rcdp sid "Q") in
  Alcotest.(check string) "session gone" "unknown_session" (get_str "kind" r)

(* The stats op's telemetry contract (see protocol.mli): a decimal
   hit_rate string, a metrics array mirroring the registry, and
   counters that are process-lifetime totals — never reset, not even
   by closing the session whose work they counted. *)
let test_service_stats_telemetry () =
  let service = Service.create () in
  let sid = open_session service in
  let stats0 = Service.handle service Protocol.Stats in
  assert_ok stats0;
  let hits0 = get_int "hits" (get "cache" stats0) in
  let misses0 = get_int "misses" (get "cache" stats0) in
  let _ = Service.handle service (rcdp sid "Q") in
  let _ = Service.handle service (rcdp sid "Q") in
  let stats = Service.handle service Protocol.Stats in
  assert_ok stats;
  let cache = get "cache" stats in
  Alcotest.(check int) "one more miss" (misses0 + 1) (get_int "misses" cache);
  Alcotest.(check int) "one more hit" (hits0 + 1) (get_int "hits" cache);
  Alcotest.(check bool) "entry count reported" true (get_int "entries" cache >= 1);
  (* hit_rate is a decimal string recomputed from the running totals *)
  let rate = get_str "hit_rate" cache in
  let expected =
    Printf.sprintf "%.3f"
      (float_of_int (hits0 + 1) /. float_of_int (hits0 + misses0 + 2))
  in
  Alcotest.(check string) "hit_rate from totals" expected rate;
  (* the metrics array mirrors the registry: the cache counters the
     Prometheus socket exposes appear here with the same values *)
  let metric name =
    match get "metrics" stats with
    | Json.List ms ->
      (match
         List.find_opt (fun m -> get_str "name" m = name) ms
       with
       | Some m -> m
       | None -> Alcotest.failf "metric %s missing from stats" name)
    | _ -> Alcotest.fail "metrics is not a list"
  in
  Alcotest.(check bool) "registry hits at least the service's" true
    (get_int "value" (metric "ric_cache_hits_total") >= hits0 + 1);
  (match get "buckets" (metric "ric_op_latency_seconds") with
   | Json.List (_ :: _) -> ()
   | _ -> Alcotest.fail "op latency histogram has no buckets");
  (* never reset: closing the session purges its cache entries but the
     lookup totals survive *)
  let _ = Service.handle service (Protocol.Close { session = sid }) in
  let after = Service.handle service Protocol.Stats in
  let cache' = get "cache" after in
  Alcotest.(check int) "hits survive close" (hits0 + 1) (get_int "hits" cache');
  Alcotest.(check int) "misses survive close" (misses0 + 1) (get_int "misses" cache');
  Alcotest.(check int) "entries purged" 0 (get_int "entries" cache')

let test_service_bad_insert_rejected () =
  let service = Service.create () in
  let sid = open_session service in
  let r = Service.handle service (insert sid "Nope" [ [ "x" ] ]) in
  Alcotest.(check string) "unknown relation" "bad_insert" (get_str "kind" r);
  let r = Service.handle service (insert sid "Cust" [ [ "only-one-cell" ] ]) in
  Alcotest.(check string) "arity mismatch" "bad_insert" (get_str "kind" r);
  (* failed inserts must not bump the epoch *)
  let q = Service.handle service (rcdp sid "Q") in
  Alcotest.(check int) "epoch untouched" 0 (get_int "epoch" q)

(* Explain profiles: the profile rides on the response, attributes the
   budget's steps to named search levels, and never appears — stale or
   otherwise — on an explain:false reply. *)
let test_service_explain_profile () =
  let service = Service.create () in
  let sid = open_session service in
  let r = Service.handle service (rcdp ~explain:true sid "Q") in
  assert_ok r;
  let p = get "profile" r in
  let steps = get_int "steps" p in
  Alcotest.(check bool) "the decide did work" true (steps > 0);
  (* every budget tick on the rcdp path is mirrored into the profile *)
  Alcotest.(check int) "full attribution" steps (get_int "attributed_steps" p);
  let level_steps, counter_steps =
    ( (match get "levels" p with
       | Json.List rows -> List.fold_left (fun a r -> a + get_int "steps" r) 0 rows
       | _ -> Alcotest.fail "levels is not a list"),
      match get "counters" p with
      | Json.Obj fields ->
        List.fold_left
          (fun a (k, v) ->
            let suffix = "_steps" in
            let n = String.length suffix in
            if
              String.length k >= n
              && String.sub k (String.length k - n) n = suffix
            then a + (match v with Json.Int i -> i | _ -> 0)
            else a)
          0 fields
      | _ -> Alcotest.fail "counters is not an object" )
  in
  Alcotest.(check int) "attribution decomposes into levels + *_steps counters"
    (get_int "attributed_steps" p)
    (level_steps + counter_steps);
  (match get "levels" p with
   | Json.List (row :: _) ->
     Alcotest.(check string) "levels name the tableau atoms" "Cust"
       (get_str "atom" row)
   | _ -> Alcotest.fail "no levels in profile");
  (* explain bypasses the cache read: this is never a cached reply *)
  Alcotest.(check bool) "explain recomputes" false (get_bool "cached" r);
  let again = Service.handle service (rcdp ~explain:true sid "Q") in
  Alcotest.(check bool) "explain recomputes every time" false
    (get_bool "cached" again);
  (* plain requests — fresh or cached — carry no profile at all *)
  let plain = Service.handle service (rcdp sid "Q") in
  assert_ok plain;
  Alcotest.(check bool) "no profile without explain" true
    (obj_field "profile" plain = None);
  let cached = Service.handle service (rcdp sid "Q") in
  Alcotest.(check bool) "cached" true (get_bool "cached" cached);
  Alcotest.(check bool) "no profile on cache hits" true
    (obj_field "profile" cached = None);
  (* explain works for the other deciders too *)
  let a = Service.handle service (audit ~explain:true sid "Q") in
  assert_ok a;
  Alcotest.(check bool) "audit profile attributes its steps" true
    (get_int "attributed_steps" (get "profile" a) > 0);
  let rq = Service.handle service (rcqp ~explain:true sid "Q") in
  assert_ok rq;
  let rqp = get "profile" rq in
  Alcotest.(check int) "rcqp full attribution" (get_int "steps" rqp)
    (get_int "attributed_steps" rqp)

let test_service_dump () =
  let service = Service.create () in
  let r = Service.handle service Protocol.Dump in
  Alcotest.(check string) "no path configured" "no_flight_recorder"
    (get_str "kind" r);
  let path = Filename.temp_file "ric_dump" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Service.set_flight_path service path;
      Ric_obs.Recorder.record ~kind:"test" ~req_id:"dump-test" "dump op";
      let r = Service.handle service Protocol.Dump in
      assert_ok r;
      Alcotest.(check string) "echoes the path" path (get_str "path" r);
      Alcotest.(check bool) "counts the events" true (get_int "events" r >= 1);
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr n;
           match Json.of_string_result line with
           | Ok (Json.Obj _) -> ()
           | _ -> Alcotest.failf "dump line not a JSON object: %s" line
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "file holds what the reply counted"
        (get_int "events" r) !n)

(* ------------------------------------------------------------------ *)
(* End to end over a Unix-domain socket *)

let with_server ?(domains = 2) f =
  let socket_path =
    Printf.sprintf "%s/ric-test-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) (Random.int 100000)
  in
  let server =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.socket_path;
            domains;
            queue_capacity = 16;
            max_connections = 960;
            read_deadline_s = 2.;
            write_deadline_s = 2.;
            root = None;
            journal = None;
            recover = false;
            search = Ric_complete.Search_mode.Seq;
            metrics = None;
            trace = None;
            flight = None;
          })
  in
  let finish () =
    (try
       Client.with_connection ~retries:40 socket_path (fun c ->
           ignore (Client.rpc c Protocol.Shutdown))
     with _ -> ());
    Domain.join server;
    try Unix.unlink socket_path with Unix.Unix_error _ -> ()
  in
  match f socket_path with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let test_e2e_roundtrip () =
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "pong" true (get_bool "pong" pong);
          let opened = Client.rpc c (open_req ~name:"e2e" scenario_source) in
          assert_ok opened;
          let sid = get_str "session" opened in
          let first = Client.rpc c (rcdp sid "Q") in
          assert_ok first;
          Alcotest.(check bool) "cold" false (get_bool "cached" first);
          Alcotest.(check string) "incomplete" "incomplete" (verdict_of first);
          Alcotest.(check bool) "timing reported" true (get_int "elapsed_us" first >= 0);
          let second = Client.rpc c (rcdp sid "Q") in
          Alcotest.(check bool) "warm" true (get_bool "cached" second);
          (* a violating insert, then the verdict reflects it *)
          let ins = Client.rpc c (insert sid "Cust" [ [ "c9"; "zed" ] ]) in
          Alcotest.(check bool) "closure lost" false (get_bool "partially_closed" ins);
          let third = Client.rpc c (rcdp sid "Q") in
          Alcotest.(check string) "violation surfaced" "not_partially_closed"
            (verdict_of third);
          let stats = Client.rpc c Protocol.Stats in
          assert_ok stats;
          Alcotest.(check bool) "hits counted" true
            (get_int "hits" (get "cache" stats) >= 1)))

let test_e2e_garbage_request () =
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let r = Client.request c (Json.Str "not a request") in
          Alcotest.(check bool) "rejected" false (get_bool "ok" r);
          Alcotest.(check string) "kind" "bad_request" (get_str "kind" r);
          (* the connection survives a bad request *)
          let pong = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "still alive" true (get_bool "pong" pong)))

(* Correlation ids: caller-supplied ids are echoed verbatim on every
   reply (errors included); absent ones are minted — by the client in
   [rpc] ("ric-" prefix), by the server for raw senders ("ricd-"). *)
let test_e2e_req_id () =
  let prefixed ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  with_server (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let r =
            Client.request c
              (Json.Obj [ ("op", Json.Str "ping"); ("req_id", Json.Str "my-req-7") ])
          in
          Alcotest.(check string) "caller id echoed" "my-req-7" (get_str "req_id" r);
          let r = Client.request c (Json.Obj [ ("op", Json.Str "ping") ]) in
          Alcotest.(check bool) "server mints for raw senders" true
            (prefixed ~prefix:"ricd-" (get_str "req_id" r));
          let r = Client.rpc c Protocol.Ping in
          Alcotest.(check bool) "client rpc mints its own" true
            (prefixed ~prefix:"ric-" (get_str "req_id" r));
          let r =
            Client.request c
              (Json.Obj [ ("op", Json.Str "teleport"); ("req_id", Json.Str "bad-1") ])
          in
          Alcotest.(check string) "rejected" "bad_request" (get_str "kind" r);
          Alcotest.(check string) "error replies keep the id" "bad-1"
            (get_str "req_id" r)))

let test_e2e_concurrent_sessions () =
  with_server ~domains:2 (fun socket_path ->
      (* two sessions, driven concurrently from two client domains;
         nocache forces every request through the decider so both
         workers genuinely compute in parallel *)
      let sids =
        Client.with_connection ~retries:40 socket_path (fun c ->
            List.map
              (fun name ->
                let r = Client.rpc c (open_req ~name scenario_source) in
                assert_ok r;
                get_str "session" r)
              [ "left"; "right" ])
      in
      let hammer sid () =
        Client.with_connection socket_path (fun c ->
            List.for_all
              (fun _ ->
                List.for_all
                  (fun q ->
                    let r = Client.rpc c (rcdp ~nocache:true sid q) in
                    get_bool "ok" r)
                  [ "Q"; "QS"; "QC" ])
              [ 1; 2; 3 ])
      in
      let clients = List.map (fun sid -> Domain.spawn (hammer sid)) sids in
      let results = List.map Domain.join clients in
      Alcotest.(check (list bool)) "both clients all-ok" [ true; true ] results)

(* Satellite regression: key components are percent-escaped, so a
   slash inside a query name (or fingerprint) cannot make two distinct
   component lists collide on one cache key.  Pre-fix, both pairs
   below collapsed to the same "s/e0/rcdp/f/a/b"-shaped string. *)
let test_cache_key_escaping () =
  let k1 = Cache.rcdp_key ~session:"s" ~fingerprint:"f" ~epoch:0 ~query:"a/b" in
  let k2 = Cache.rcdp_key ~session:"s" ~fingerprint:"f/a" ~epoch:0 ~query:"b" in
  Alcotest.(check bool) "slash in query vs slash in fingerprint" true (k1 <> k2);
  let k3 = Cache.rcqp_key ~session:"s/e0" ~fingerprint:"f" ~query:"q" in
  let k4 = Cache.rcqp_key ~session:"s" ~fingerprint:"e0/f" ~query:"q" in
  Alcotest.(check bool) "slash in session vs fingerprint" true (k3 <> k4);
  (* escaping is injective: the escape of an already-escaped string
     differs from the escape of the raw one *)
  Alcotest.(check bool) "injective on % sequences" true
    (Cache.escape "a/b" <> Cache.escape "a%2Fb");
  Alcotest.(check string) "clean strings unchanged" "plain" (Cache.escape "plain");
  (* a crafted session name cannot alias another session's purge prefix *)
  let p = Cache.session_prefix ~session:"s1" in
  let k5 = Cache.rcdp_key ~session:"s1/e9" ~fingerprint:"f" ~epoch:0 ~query:"q" in
  let prefixed s ~prefix =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  Alcotest.(check bool) "slashed session escapes the prefix" false
    (prefixed k5 ~prefix:p)

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "bad requests rejected" `Quick test_protocol_rejects;
          Alcotest.test_case "framing" `Quick test_framing;
        ] );
      ( "cache keys",
        [ Alcotest.test_case "component escaping" `Quick test_cache_key_escaping ] );
      ("pool", [ Alcotest.test_case "drains all jobs" `Quick test_pool_runs_everything ]);
      ( "service",
        [
          Alcotest.test_case "open + errors" `Quick test_service_open_and_errors;
          Alcotest.test_case "verdict cache hit" `Quick test_service_cache_hit;
          Alcotest.test_case "insert migrates cache" `Quick test_service_insert_migrates_cache;
          Alcotest.test_case "insert completes query" `Quick test_service_insert_completes_query;
          Alcotest.test_case "bulk insert" `Quick test_service_insert_bulk;
          Alcotest.test_case "bulk insert all-or-nothing" `Quick
            test_service_insert_bulk_all_or_nothing;
          Alcotest.test_case "violating insert invalidates" `Quick
            test_service_violating_insert_invalidates;
          Alcotest.test_case "rcqp survives insert" `Quick test_service_rcqp_survives_insert;
          Alcotest.test_case "audit cache drops on insert" `Quick
            test_service_audit_cached_and_dropped;
          Alcotest.test_case "close purges" `Quick test_service_close_purges;
          Alcotest.test_case "stats telemetry" `Quick test_service_stats_telemetry;
          Alcotest.test_case "bad insert rejected" `Quick test_service_bad_insert_rejected;
          Alcotest.test_case "explain profile" `Quick test_service_explain_profile;
          Alcotest.test_case "flight-recorder dump op" `Quick test_service_dump;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "socket round trip" `Quick test_e2e_roundtrip;
          Alcotest.test_case "garbage request" `Quick test_e2e_garbage_request;
          Alcotest.test_case "req-id correlation" `Quick test_e2e_req_id;
          Alcotest.test_case "concurrent sessions" `Quick test_e2e_concurrent_sessions;
        ] );
    ]
