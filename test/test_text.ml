(* Tests for the .ric scenario format: lexer, parser, semantic checks,
   printing round-trips, and end-to-end decisions on parsed files. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
open Ric_text

let relation_testable = Alcotest.testable Relation.pp Relation.equal

let minimal =
  {|
  schema R(a, b).
  master M(x).
  rows R { (1, 2) (e0, foo) }.
  rows M { (1) }.
  query Q(x) :- R(x, y).
  constraint C(x) :- R(x, y) => M[0].
|}

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize {|R(a, "b c") :- => -> != = 42 -7 # comment
x|} in
  let kinds = List.map (fun p -> p.Lexer.tok) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
     = [
         Lexer.IDENT "R"; Lexer.LPAREN; Lexer.IDENT "a"; Lexer.COMMA; Lexer.STRING "b c";
         Lexer.RPAREN; Lexer.TURNSTILE; Lexer.ARROW; Lexer.FDARROW; Lexer.NEQ; Lexer.EQ;
         Lexer.INT 42; Lexer.INT (-7); Lexer.IDENT "x"; Lexer.EOF;
       ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  (match toks with
   | [ a; b; _eof ] ->
     Alcotest.(check (pair int int)) "a at 1:1" (1, 1) (a.Lexer.line, a.Lexer.col);
     Alcotest.(check (pair int int)) "b at 2:3" (2, 3) (b.Lexer.line, b.Lexer.col)
   | _ -> Alcotest.fail "expected three tokens")

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Lexer.tokenize "\"abc");
       false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "illegal char" true
    (try
       ignore (Lexer.tokenize "a % b");
       false
     with Lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Streaming lexer: every refill size must yield the same positioned
   token stream as the whole-input tokenizer, including tokens split
   across a refill boundary (chunk:1 splits every multi-byte token). *)

let drain_source s =
  let rec go acc =
    let p = Lexer.next s in
    if p.Lexer.tok = Lexer.EOF then List.rev (p :: acc) else go (p :: acc)
  in
  go []

(* lex errors count as part of the observable stream: both sides must
   fail with the same message and position, or not at all *)
let lex_result f =
  match f () with
  | toks -> Ok toks
  | exception Lexer.Lex_error (m, l, c) -> Error (m, l, c)

let same_stream src chunk =
  lex_result (fun () -> Lexer.tokenize src)
  = lex_result (fun () -> drain_source (Lexer.of_string ~chunk src))

let lexable_corpus =
  [
    minimal;
    "a\n  b";
    {|R(a, "b c") :- => -> != = 42 -7 # comment
x|};
    "";
    "# only a comment";
    "x";
    "rows T { (e0, k1, e2) (e1, k0, e0) }.";
    "a-b -12 - 7 ?n \"\" \"two words\"";
  ]

let test_stream_chunk_differential () =
  List.iter
    (fun src ->
      for chunk = 1 to 40 do
        Alcotest.(check bool) (Printf.sprintf "chunk %d" chunk) true (same_stream src chunk)
      done)
    lexable_corpus

(* random lexable text: legal fragments glued with random separators —
   fragments may coalesce into longer tokens, which is fine, both
   lexers see the same bytes *)
let lexable_gen =
  QCheck2.Gen.(
    let punct =
      oneofl
        [ "("; ")"; "{"; "}"; "["; "]"; ","; "."; ":-"; "=>"; "->"; "!="; "="; ":"; "|"; "?" ]
    in
    let number = map string_of_int (int_range (-9999) 9999) in
    let word =
      map2
        (fun c s -> Printf.sprintf "%c%s" c s)
        (oneofl [ 'a'; 'z'; '_'; 'B' ])
        (string_size ~gen:(oneofl [ 'a'; '0'; '\''; '-'; 'x' ]) (int_range 0 6))
    in
    let quoted =
      map
        (fun s -> "\"" ^ s ^ "\"")
        (string_size ~gen:(oneofl [ 'a'; ' '; '.'; '('; '0' ]) (int_range 0 8))
    in
    let comment =
      map (fun s -> "# " ^ s ^ "\n") (string_size ~gen:(oneofl [ 'a'; ' '; '"' ]) (int_range 0 8))
    in
    let sep = oneofl [ " "; "\t"; "\n"; "\r\n"; "" ] in
    let frag = frequency [ (3, word); (2, number); (3, punct); (1, quoted); (1, comment) ] in
    map
      (fun pieces -> String.concat "" (List.concat_map (fun (f, w) -> [ f; w ]) pieces))
      (list_size (int_range 0 50) (pair frag sep)))

let stream_differential_prop =
  QCheck2.Test.make ~name:"streaming lexer ≡ tokenize at every chunk size" ~count:300
    lexable_gen (fun src ->
      List.for_all (fun chunk -> same_stream src chunk) [ 1; 2; 3; 5; 8; 13; 64 ])

(* ------------------------------------------------------------------ *)
(* Loader differential: the streaming columnar fast path accepts the
   same language and builds an equal scenario as the slurp baseline,
   at every refill size — chunk:1 forces the fused rows scanner
   through its compact-and-refill paths on every cell. *)

let scenario_equal a b =
  Database.equal a.Scenario.db b.Scenario.db
  && Database.equal a.Scenario.master b.Scenario.master
  && List.map fst a.Scenario.queries = List.map fst b.Scenario.queries
  && List.map fst a.Scenario.ccs = List.map fst b.Scenario.ccs

let test_parse_stream_vs_slurp () =
  let srcs =
    [
      minimal;
      "schema R(a).\nrows R { }.";
      (* quoted cells, negatives, duplicates, comments inside the block *)
      "schema R(a, b).\nrows R { (\"x y\", -7) # mid-block\n (e0, 42) (e0, 42) (\"\", 0) }.";
      "schema R(a).\nmaster M(x).\nrows M { (longidentifier'with-kinks) }.\nrows R { (1) }.";
    ]
  in
  List.iter
    (fun src ->
      let slurp = Scenario.parse_slurp src in
      List.iter
        (fun chunk ->
          let fast = Scenario.parse ~chunk src in
          Alcotest.(check bool) (Printf.sprintf "chunk %d" chunk) true (scenario_equal fast slurp))
        [ 1; 2; 3; 7; 64; 65536 ])
    srcs

let parse_err f =
  match f () with
  | (_ : Scenario.t) -> None
  | exception Scenario.Parse_error (m, l, c) -> Some (m, l, c)

(* malformed rows blocks: the fast scanner must report the same
   message at the same position as the token-at-a-time grammar *)
let test_parse_error_parity () =
  List.iter
    (fun src ->
      let fast = parse_err (fun () -> Scenario.parse src) in
      let slurp = parse_err (fun () -> Scenario.parse_slurp src) in
      Alcotest.(check bool) (src ^ ": both fail") true (fast <> None);
      Alcotest.(check bool) (src ^ ": same error") true (fast = slurp))
    [
      "schema R(a, b).\nrows R { (1 2) }.";
      "schema R(a).\nrows R { (1, }.";
      "schema R(a).\nrows R { (1; 2) }.";
      "schema R(a).\nrows R { (1)";
      "schema R(a).\nrows R { ( ) }.";
    ];
  (* intra-block arity mismatch: positions agree (the block header),
     messages legitimately differ between the packed and per-tuple
     paths — both must still be Parse_errors *)
  let src = "schema R(a, b).\nrows R { (1, 2) (3) }." in
  (match (parse_err (fun () -> Scenario.parse src), parse_err (fun () -> Scenario.parse_slurp src)) with
  | Some (_, l1, c1), Some (_, l2, c2) ->
    Alcotest.(check (pair int int)) "arity error position" (l2, c2) (l1, c1)
  | _ -> Alcotest.fail "arity mismatch must fail in both loaders")

(* ------------------------------------------------------------------ *)
(* Parser: structure *)

let test_parse_minimal () =
  let s = Scenario.parse minimal in
  Alcotest.(check int) "db rows" 2 (Database.total_tuples s.Scenario.db);
  Alcotest.(check int) "master rows" 1 (Database.total_tuples s.Scenario.master);
  Alcotest.(check int) "queries" 1 (List.length s.Scenario.queries);
  Alcotest.(check int) "ccs" 1 (List.length s.Scenario.ccs);
  (* mixed value kinds in rows *)
  Alcotest.(check bool) "string row present" true
    (Relation.mem
       (Tuple.make [ Value.str "e0"; Value.str "foo" ])
       (Database.relation s.Scenario.db "R"))

let test_parse_finite_domain () =
  let s = Scenario.parse {|
    schema F(n, b in {0, 1}).
  |} in
  let rs = Schema.find s.Scenario.db_schema "F" in
  Alcotest.(check bool) "finite second column" true
    (Domain.is_finite (Schema.attr_domain rs 1))

let test_parse_fd () =
  let s =
    Scenario.parse
      {|
      schema Supt(eid, dept, cid).
      fd K Supt: eid -> dept, cid.
    |}
  in
  (* the FD becomes two CCs (one per Y column) *)
  Alcotest.(check int) "two ccs" 2 (List.length s.Scenario.ccs);
  List.iter
    (fun (_, cc) ->
      Alcotest.(check bool) "empty target" true (cc.Containment.rhs = Projection.Empty))
    s.Scenario.ccs

let test_parse_boolean_query () =
  let s =
    Scenario.parse
      {|
      schema R(a).
      query B() :- R(x), x = 1.
    |}
  in
  match Scenario.find_query s "B" with
  | Some (Lang.Q_cq q) -> Alcotest.(check int) "boolean head" 0 (Cq.arity q)
  | Some _ -> Alcotest.fail "expected a CQ"
  | None -> Alcotest.fail "query B not found"

(* ------------------------------------------------------------------ *)
(* Parser: errors carry positions *)

let expect_error src fragment =
  try
    ignore (Scenario.parse src);
    Alcotest.failf "expected a parse error mentioning %S" fragment
  with Scenario.Parse_error (msg, line, _) ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" msg fragment)
      true
      (line > 0
      &&
      let lower s = String.lowercase_ascii s in
      let contains hay needle =
        let h = lower hay and n = lower needle in
        let rec go i = i + String.length n <= String.length h && (String.sub h i (String.length n) = n || go (i + 1)) in
        go 0
      in
      contains msg fragment)

let test_parse_errors () =
  expect_error "schema R(a. " "expected";
  expect_error "rows R { (1) }." "undeclared";
  expect_error {|
    schema R(a).
    query Q(x) :- S(x).
  |} "unknown";
  expect_error {|
    schema R(a).
    query Q(x) :- R(x, y).
  |} "arity";
  expect_error {|
    schema R(a).
    master M(x).
    constraint C(v) :- R(v) => M[3].
  |} "out of range";
  expect_error {|
    schema Supt(eid, dept).
    fd K Supt: nope -> dept.
  |} "attribute"

(* ------------------------------------------------------------------ *)
(* Round trip *)

let test_roundtrip () =
  let s = Scenario.parse minimal in
  let printed = Format.asprintf "%a" Scenario.pp s in
  let s2 = Scenario.parse printed in
  Alcotest.(check bool) "db equal" true (Database.equal s.Scenario.db s2.Scenario.db);
  Alcotest.(check bool) "master equal" true
    (Database.equal s.Scenario.master s2.Scenario.master);
  Alcotest.(check int) "queries preserved" (List.length s.Scenario.queries)
    (List.length s2.Scenario.queries);
  (* parsed queries evaluate identically *)
  List.iter2
    (fun (n1, q1) (n2, q2) ->
      Alcotest.(check string) "name" n1 n2;
      Alcotest.check relation_testable ("query " ^ n1) (Lang.eval s.Scenario.db q1)
        (Lang.eval s2.Scenario.db q2))
    s.Scenario.queries s2.Scenario.queries

(* ------------------------------------------------------------------ *)
(* End to end: decide on the shipped scenario file *)

let crm_path = "../../../scenarios/crm.ric"

let load_crm () =
  (* dune runs tests in _build/default/test *)
  try Scenario.load crm_path with Sys_error _ -> Scenario.load "scenarios/crm.ric"

let test_shipped_scenario_parses () =
  let s = load_crm () in
  Alcotest.(check bool) "partially closed" true
    (Containment.holds_all ~db:s.Scenario.db ~master:s.Scenario.master (Scenario.all_ccs s))

let test_shipped_scenario_decides () =
  let s = load_crm () in
  let q2 = Option.get (Scenario.find_query s "Q2") in
  (* c2 is a master customer not yet supported, but the cap of 2 is
     reached for e0, so Q2 is complete *)
  match
    Rcdp.decide ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q2
  with
  | Rcdp.Complete -> ()
  | Rcdp.Incomplete cex ->
    Alcotest.failf "expected complete, got incomplete with %a" Tuple.pp cex.Rcdp.cex_answer

let test_shipped_scenario_q0 () =
  let s = load_crm () in
  let q0 = Option.get (Scenario.find_query s "Q0") in
  (* c2 (area 908) is missing from Cust → Q0 incomplete *)
  match
    Rcdp.decide ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q0
  with
  | Rcdp.Incomplete cex ->
    Alcotest.(check bool) "missing c2" true
      (Tuple.equal cex.Rcdp.cex_answer (Tuple.of_strs [ "c2"; "carol" ]))
  | Rcdp.Complete -> Alcotest.fail "expected incomplete (carol is missing)"

(* ------------------------------------------------------------------ *)
(* UCQ queries and the supply-chain scenario *)

let test_ucq_query_parses () =
  let s =
    Scenario.parse
      {|
      schema R(a, b).
      rows R { (1, 2) (3, 4) }.
      query U(x) :- R(x, 2) | R(x, 4).
    |}
  in
  match Scenario.find_query s "U" with
  | Some (Lang.Q_ucq u) ->
    Alcotest.(check int) "two disjuncts" 2 (List.length u);
    Alcotest.check relation_testable "evaluates as a union"
      (Relation.of_int_rows [ [ 1 ]; [ 3 ] ])
      (Lang.eval s.Scenario.db (Lang.Q_ucq u))
  | Some _ -> Alcotest.fail "expected a UCQ"
  | None -> Alcotest.fail "query U not found"

let test_ucq_arity_mismatch_rejected () =
  Alcotest.(check bool) "mixed head widths rejected" true
    (try
       ignore
         (Scenario.parse
            {|
            schema R(a, b).
            query U(x) :- R(x, y) | R(x, x).
          |});
       true (* same width here, fine *)
     with Scenario.Parse_error _ -> true)

let load_supply () =
  try Scenario.load "../../../scenarios/supply_chain.ric"
  with Sys_error _ -> Scenario.load "scenarios/supply_chain.ric"

let test_supply_chain_parses () =
  let s = load_supply () in
  Alcotest.(check int) "three queries" 3 (List.length s.Scenario.queries);
  Alcotest.(check bool) "partially closed" true
    (Containment.holds_all ~db:s.Scenario.db ~master:s.Scenario.master (Scenario.all_ccs s))

let test_supply_chain_decisions () =
  let s = load_supply () in
  let decide name =
    Rcdp.decide ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db
      (Option.get (Scenario.find_query s name))
  in
  (* the order key pins o1's line and the depot FD pins its delivery,
     but new order ids can always appear: ActiveSuppliers is bounded by
     the supplier registry... supplier values are bounded, so the
     answer can only grow within {s1, s2}, both already present *)
  (match decide "ActiveSuppliers" with
   | Rcdp.Complete -> ()
   | Rcdp.Incomplete cex ->
     Alcotest.failf "ActiveSuppliers should be complete, missing %a" Tuple.pp
       cex.Rcdp.cex_answer);
  (* parts p3 was never ordered: a fresh order for p3 by s1 is
     admissible, so PartsBySupplier is incomplete *)
  (match decide "PartsBySupplier" with
   | Rcdp.Incomplete _ -> ()
   | Rcdp.Complete -> Alcotest.fail "PartsBySupplier should be incomplete (p3 possible)");
  (* o1 already has its unique depot *)
  match decide "WhereIsO1" with
  | Rcdp.Complete -> ()
  | Rcdp.Incomplete _ -> Alcotest.fail "WhereIsO1 should be complete (oid → depot)"

(* ------------------------------------------------------------------ *)
(* C-table rows (crows) *)

let test_crows_parse () =
  let s =
    Scenario.parse
      {|
      schema R(a, b).
      rows R { (1, 2) }.
      crows R { (3, ?x) (?x, 4) }.
    |}
  in
  (match s.Scenario.ctables with
   | [ tab ] ->
     Alcotest.(check int) "ground row folded in" 3 (List.length tab.Ric_incomplete.Ctable.rows);
     Alcotest.(check (list string)) "one null" [ "x" ] (Ric_incomplete.Ctable.nulls tab)
   | _ -> Alcotest.fail "expected one c-table");
  (* the null is shared between the two crows: worlds correlate *)
  let cdb = Scenario.as_cdatabase s in
  let worlds = Ric_incomplete.Cdatabase.worlds ~values:[ Value.int 3; Value.int 4 ] cdb in
  Alcotest.(check int) "two worlds (x ∈ {3,4})" 2 (List.length worlds);
  List.iter
    (fun w ->
      let rel = Database.relation w "R" in
      Alcotest.(check int) "each world has 3 rows" 3 (Relation.cardinal rel))
    worlds

let test_crows_undeclared_rejected () =
  Alcotest.(check bool) "crows needs a schema" true
    (try
       ignore (Scenario.parse "crows R { (?x) }.");
       false
     with Scenario.Parse_error _ -> true)

let test_crows_roundtrip () =
  let src = {|
    schema R(a, b).
    crows R { (1, ?x) }.
  |} in
  let s = Scenario.parse src in
  let printed = Format.asprintf "%a" Scenario.pp s in
  let s2 = Scenario.parse printed in
  Alcotest.(check int) "c-table survives the round trip" (List.length s.Scenario.ctables)
    (List.length s2.Scenario.ctables)

let test_dirty_support_scenario () =
  let s =
    try Scenario.load "../../../scenarios/dirty_support.ric"
    with Sys_error _ -> Scenario.load "scenarios/dirty_support.ric"
  in
  let q = Option.get (Scenario.find_query s "Q2") in
  let values = Database.adom s.Scenario.db @ Database.adom s.Scenario.master in
  let report =
    Ric_incomplete.Rc_missing.analyze ~values ~schema:s.Scenario.db_schema
      ~master:s.Scenario.master ~ccs:(Scenario.all_ccs s) (Scenario.as_cdatabase s) q
  in
  Alcotest.(check bool) "weakly complete" true report.Ric_incomplete.Rc_missing.weakly_complete;
  Alcotest.(check bool) "not strongly complete" false
    report.Ric_incomplete.Rc_missing.strongly_complete

(* ------------------------------------------------------------------ *)
(* JSON reports *)

let test_json_escaping () =
  Alcotest.(check string) "escapes" {|{"a\"b":"line\nbreak\t\\"}|}
    (Json.to_string (Json.Obj [ ("a\"b", Json.Str "line\nbreak\t\\") ]));
  Alcotest.(check string) "nested" {|[1,null,true,{"k":[]}]|}
    (Json.to_string (Json.List [ Json.Int 1; Json.Null; Json.Bool true; Json.Obj [ ("k", Json.List []) ] ]))

let test_json_reports () =
  let s = load_crm () in
  let q0 = Option.get (Scenario.find_query s "Q0") in
  let verdict =
    Rcdp.decide ~schema:s.Scenario.db_schema ~master:s.Scenario.master
      ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q0
  in
  let json = Json.to_string (Report.rcdp_verdict verdict) in
  Alcotest.(check bool) "mentions the verdict" true
    (String.length json > 0
    &&
    let contains hay needle =
      let rec go i =
        i + String.length needle <= String.length hay
        && (String.sub hay i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    contains json "incomplete" && contains json "carol")

(* ------------------------------------------------------------------ *)
(* JSON parser *)

let json_testable =
  Alcotest.testable (fun ppf j -> Format.pp_print_string ppf (Json.to_string j)) ( = )

let parses expected src =
  Alcotest.check json_testable (Printf.sprintf "parse %s" src) expected (Json.of_string src)

let test_json_parse_values () =
  parses Json.Null "null";
  parses (Json.Bool true) "true";
  parses (Json.Bool false) "false";
  parses (Json.Int 0) "0";
  parses (Json.Int 42) "42";
  parses (Json.Int (-7)) "-7";
  parses (Json.Str "") {|""|};
  parses (Json.Str "hi") {|"hi"|};
  parses (Json.List []) "[]";
  parses (Json.List [ Json.Int 1; Json.Int 2 ]) "[1,2]";
  parses (Json.Obj []) "{}";
  parses
    (Json.Obj [ ("k", Json.List [ Json.Null; Json.Bool true ]) ])
    {|{"k":[null,true]}|};
  (* whitespace everywhere, including trailing *)
  parses
    (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Int 2 ]) ])
    " { \"a\" : 1 ,\n\t\"b\" : [ 2 ] } \n";
  (* key order and duplicates preserved *)
  parses
    (Json.Obj [ ("x", Json.Int 1); ("x", Json.Int 2) ])
    {|{"x":1,"x":2}|}

let test_json_parse_escapes () =
  parses (Json.Str "a\"b") {|"a\"b"|};
  parses (Json.Str "line\nbreak\t\\") {|"line\nbreak\t\\"|};
  parses (Json.Str "/\b\012\r") {|"\/\b\f\r"|};
  (* \uXXXX: ASCII, two-byte, three-byte, and a surrogate pair *)
  parses (Json.Str "A") {|"A"|};
  parses (Json.Str "\xc3\xa9") {|"é"|};
  parses (Json.Str "\xe2\x82\xac") {|"€"|};
  parses (Json.Str "\xf0\x9d\x84\x9e") {|"𝄞"|};
  (* raw UTF-8 passes through untouched *)
  parses (Json.Str "caf\xc3\xa9") "\"caf\xc3\xa9\""

let expect_json_error src fragment =
  match Json.of_string_result src with
  | Ok j -> Alcotest.failf "expected %s to fail, parsed %s" src (Json.to_string j)
  | Error (msg, line, col) ->
    let contains hay needle =
      let rec go i =
        i + String.length needle <= String.length hay
        && (String.sub hay i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error on %s has a position" src)
      true (line >= 1 && col >= 1);
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" msg fragment)
      true (contains msg fragment)

let test_json_parse_errors () =
  expect_json_error "" "value";
  expect_json_error "   " "value";
  expect_json_error "nul" "null";
  expect_json_error "tru" "true";
  expect_json_error {|"abc|} "string";
  expect_json_error {|"bad \q escape"|} "escape";
  expect_json_error {|"\u12"|} "hex";
  expect_json_error {|"\ud834"|} "surrogate";
  expect_json_error "[1,2" "array";
  expect_json_error "[1 2]" "]";
  expect_json_error {|{"a" 1}|} ":";
  expect_json_error {|{"a":1,}|} "\"";
  expect_json_error "{" "end of input";
  expect_json_error "-" "digit";
  (* this Json.t is integers-only: fractions are a loud error *)
  expect_json_error "1.5" "float";
  expect_json_error "1e3" "float";
  (* the whole input must be one value *)
  expect_json_error "1 2" "trailing";
  expect_json_error {|{"a":1} x|} "trailing"

let test_json_error_positions () =
  match Json.of_string_result "{\n  \"a\": [1,\n  oops]}" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error (_, line, col) ->
    Alcotest.(check int) "line 3" 3 line;
    Alcotest.(check int) "col 3" 3 col

let test_json_of_channel () =
  let path = Filename.temp_file "ric_json" ".json" in
  let oc = open_out path in
  output_string oc {|  {"from": "disk", "n": [1, 2, 3]}  |};
  close_out oc;
  let ic = open_in path in
  let j = Json.of_channel ic in
  close_in ic;
  Sys.remove path;
  Alcotest.check json_testable "channel parse"
    (Json.Obj
       [ ("from", Json.Str "disk"); ("n", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]) ])
    j

(* the printer/parser pair is an isomorphism on Json.t: property-test
   [of_string (to_string j) = j] over random documents *)
let json_gen =
  QCheck2.Gen.(
    let key = string_size ~gen:printable (int_range 0 6) in
    let str = string_size ~gen:printable (int_range 0 10) in
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) int;
              map (fun s -> Json.Str s) str;
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (2, leaf);
              (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2))));
              ( 1,
                map
                  (fun kvs -> Json.Obj kvs)
                  (list_size (int_range 0 4) (pair key (self (n / 2)))) );
            ]))

let json_roundtrip_prop =
  QCheck2.Test.make ~name:"of_string ∘ to_string = id" ~count:500 json_gen (fun j ->
      Json.of_string (Json.to_string j) = j)

(* every shipped scenario survives parse → pp → parse with its data,
   queries and constraints intact *)
let scenarios_dir () =
  if Sys.file_exists "../../../scenarios" then "../../../scenarios" else "scenarios"

let test_all_scenarios_roundtrip () =
  let dir = scenarios_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ric")
    |> List.sort compare
  in
  Alcotest.(check bool) "found shipped scenarios" true (List.length files >= 3);
  List.iter
    (fun file ->
      let s = Scenario.load (Filename.concat dir file) in
      let printed = Format.asprintf "%a" Scenario.pp s in
      let s2 =
        try Scenario.parse printed
        with Scenario.Parse_error (msg, line, col) ->
          Alcotest.failf "%s: reprint does not parse (%d:%d: %s)" file line col msg
      in
      Alcotest.(check bool) (file ^ ": db survives") true
        (Database.equal s.Scenario.db s2.Scenario.db);
      Alcotest.(check bool) (file ^ ": master survives") true
        (Database.equal s.Scenario.master s2.Scenario.master);
      Alcotest.(check int) (file ^ ": ccs survive") (List.length s.Scenario.ccs)
        (List.length s2.Scenario.ccs);
      Alcotest.(check int)
        (file ^ ": c-tables survive")
        (List.length s.Scenario.ctables)
        (List.length s2.Scenario.ctables);
      List.iter2
        (fun (n1, q1) (n2, q2) ->
          Alcotest.(check string) (file ^ ": query name") n1 n2;
          Alcotest.check relation_testable
            (Printf.sprintf "%s: %s evaluates identically" file n1)
            (Lang.eval s.Scenario.db q1) (Lang.eval s2.Scenario.db q2))
        s.Scenario.queries s2.Scenario.queries)
    files

let test_json_database_roundtrip_shape () =
  let s = load_crm () in
  let json = Json.to_string (Report.database s.Scenario.db) in
  Alcotest.(check bool) "object with both relations" true
    (String.length json > 2 && json.[0] = '{'
    &&
    let contains hay needle =
      let rec go i =
        i + String.length needle <= String.length hay
        && (String.sub hay i (String.length needle) = needle || go (i + 1))
      in
      go 0
    in
    contains json "\"Supt\"" && contains json "\"Cust\"")

let () =
  Alcotest.run "text"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "chunk-boundary corpus" `Quick test_stream_chunk_differential;
          QCheck_alcotest.to_alcotest stream_differential_prop;
          Alcotest.test_case "fast path ≡ slurp" `Quick test_parse_stream_vs_slurp;
          Alcotest.test_case "error parity" `Quick test_parse_error_parity;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal scenario" `Quick test_parse_minimal;
          Alcotest.test_case "finite domains" `Quick test_parse_finite_domain;
          Alcotest.test_case "functional dependencies" `Quick test_parse_fd;
          Alcotest.test_case "boolean query" `Quick test_parse_boolean_query;
          Alcotest.test_case "error positions" `Quick test_parse_errors;
        ] );
      ("printing", [ Alcotest.test_case "round trip" `Quick test_roundtrip ]);
      ( "end to end",
        [
          Alcotest.test_case "crm.ric parses" `Quick test_shipped_scenario_parses;
          Alcotest.test_case "Q2 complete via cap" `Quick test_shipped_scenario_decides;
          Alcotest.test_case "Q0 incomplete" `Quick test_shipped_scenario_q0;
        ] );
      ( "ucq / supply chain",
        [
          Alcotest.test_case "ucq query parses" `Quick test_ucq_query_parses;
          Alcotest.test_case "head width check" `Quick test_ucq_arity_mismatch_rejected;
          Alcotest.test_case "supply_chain.ric parses" `Quick test_supply_chain_parses;
          Alcotest.test_case "supply chain decisions" `Quick test_supply_chain_decisions;
        ] );
      ( "crows (§5)",
        [
          Alcotest.test_case "parse + worlds" `Quick test_crows_parse;
          Alcotest.test_case "undeclared rejected" `Quick test_crows_undeclared_rejected;
          Alcotest.test_case "round trip" `Quick test_crows_roundtrip;
          Alcotest.test_case "dirty_support.ric" `Quick test_dirty_support_scenario;
        ] );
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "verdict report" `Quick test_json_reports;
          Alcotest.test_case "database shape" `Quick test_json_database_roundtrip_shape;
        ] );
      ( "json parser",
        [
          Alcotest.test_case "values" `Quick test_json_parse_values;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "error positions" `Quick test_json_error_positions;
          Alcotest.test_case "of_channel" `Quick test_json_of_channel;
          QCheck_alcotest.to_alcotest json_roundtrip_prop;
        ] );
      ( "scenario files",
        [ Alcotest.test_case "all shipped scenarios round trip" `Quick test_all_scenarios_roundtrip ] );
    ]
