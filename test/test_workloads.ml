(* Tests for the CRM workload (the paper's running example) and the
   Section 2.3 guidance paradigms. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
open Ric_workloads

let master = Crm.master ~customers:6 ~managers:[ ("e1", "e0"); ("e2", "e1") ] ()
let full_db = Crm.db ~master ~keep:1.0 ~supported_by:[ ("e0", [ "d0" ]) ] ()

let drop_customer db cid =
  let cust = Database.relation db "Cust" in
  let cust' =
    Relation.filter (fun t -> not (Value.equal (Tuple.get t 0) (Value.Str cid))) cust
  in
  let supt = Database.relation db "Supt" in
  let supt' =
    Relation.filter (fun t -> not (Value.equal (Tuple.get t 2) (Value.Str cid))) supt
  in
  Database.set_relation (Database.set_relation db "Cust" cust') "Supt" supt'

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_generator_shapes () =
  Alcotest.(check int) "DCust size" 6
    (Relation.cardinal (Database.relation master "DCust"));
  Alcotest.(check int) "all customers copied" 6
    (Relation.cardinal (Database.relation full_db "Cust"));
  Alcotest.(check int) "support tuples" 6
    (Relation.cardinal (Database.relation full_db "Supt"));
  Alcotest.(check bool) "keep fraction drops rows" true
    (Relation.cardinal
       (Database.relation (Crm.db ~master ~keep:0.3 ~supported_by:[] ()) "Cust")
     < 6)

let test_partially_closed () =
  Alcotest.(check bool) "full db is partially closed" true
    (Containment.holds_all ~db:full_db ~master
       [ Crm.cc_supported_domestic; Crm.cc_domestic_customers ])

let test_international_not_bounded () =
  let db = Crm.add_international full_db [ ("i1", "intl one") ] in
  Alcotest.(check bool) "international rows do not violate the CCs" true
    (Containment.holds_all ~db ~master
       [ Crm.cc_supported_domestic; Crm.cc_domestic_customers ])

(* ------------------------------------------------------------------ *)
(* Section 2.3 paradigm 1: assessing completeness *)

let ccs = [ Crm.cc_domestic_customers ]

let test_q0_complete_when_full () =
  Alcotest.(check bool) "Q0 complete on the full database" true
    (Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db:full_db (Lang.Q_cq Crm.q0)
     = Rcdp.Complete)

let test_q0_incomplete_when_missing () =
  (* c3 is an area-908 customer *)
  let db = drop_customer full_db "c3" in
  match Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q0) with
  | Rcdp.Complete -> Alcotest.fail "c3 is missing, Q0 cannot be complete"
  | Rcdp.Incomplete cex ->
    Alcotest.(check bool) "counterexample names c3" true
      (Tuple.equal cex.Rcdp.cex_answer (Tuple.of_strs [ "c3"; "name3" ]))

let test_q0_missing_non_908_customer_is_fine () =
  (* c1 has area code 212; dropping it does not affect Q0 *)
  let db = drop_customer full_db "c1" in
  Alcotest.(check bool) "Q0 complete without c1" true
    (Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q0) = Rcdp.Complete)

(* ------------------------------------------------------------------ *)
(* Section 2.3 paradigm 2: guidance for data collection *)

let test_audit_suggests_missing_tuples () =
  let db = drop_customer full_db "c3" in
  match Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q0) with
  | Guidance.Completable { additions; completed; rounds } ->
    Alcotest.(check bool) "rounds bounded" true (rounds <= 4);
    Alcotest.(check bool) "suggested tuple is c3's row" true
      (Relation.mem
         (Tuple.of_strs [ "c3"; "name3"; "01"; "908"; "555-0003" ])
         (Database.relation additions "Cust"));
    Alcotest.(check bool) "completed db is complete" true
      (Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db:completed (Lang.Q_cq Crm.q0)
       = Rcdp.Complete)
  | r -> Alcotest.failf "expected completable, got %a" Guidance.pp_audit r

let test_audit_already_complete () =
  match Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db:full_db (Lang.Q_cq Crm.q0) with
  | Guidance.Already_complete -> ()
  | r -> Alcotest.failf "expected already complete, got %a" Guidance.pp_audit r

(* ------------------------------------------------------------------ *)
(* Section 2.3 paradigm 3: when master data must grow *)

let test_q0_all_customers_not_completable () =
  match
    Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db:full_db
      (Lang.Q_cq Crm.q0_all_customers)
  with
  | Guidance.Not_completable _ -> ()
  | r -> Alcotest.failf "expected not completable, got %a" Guidance.pp_audit r

(* ------------------------------------------------------------------ *)
(* Example 1.1 queries *)

let test_q1_complete_when_support_saturated () =
  (* Q1 joins Cust and Supt; with every domestic customer present and
     supported, the answer is bounded by DCust via the CC *)
  let ccs = [ Crm.cc_domestic_customers; Crm.cc_supported_domestic ] in
  Alcotest.(check bool) "Q1 complete" true
    (Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db:full_db (Lang.Q_cq Crm.q1)
     = Rcdp.Complete)

let test_q2_with_support_cap () =
  (* Example 2.2: with the k-cap and k answers, Q2 is complete *)
  let k = 6 in
  let ccs = [ Crm.cc_support_load k ] in
  Alcotest.(check bool) "Q2 complete with saturated cap" true
    (Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db:full_db (Lang.Q_cq Crm.q2)
     = Rcdp.Complete);
  let db = drop_customer full_db "c0" in
  Alcotest.(check bool) "Q2 incomplete below the cap" true
    (Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q2)
     <> Rcdp.Complete)

let test_q3_datalog_vs_cq () =
  (* Example 1.1's Q3: the FP version finds everyone above e0, the CQ
     truncation only direct managers *)
  let fp_answers = Datalog.eval full_db Crm.q3_fp in
  let cq_answers = Cq.eval full_db Crm.q3_cq in
  Alcotest.(check int) "two people above e0" 2 (Relation.cardinal fp_answers);
  Alcotest.(check int) "one direct manager" 1 (Relation.cardinal cq_answers);
  Alcotest.(check bool) "e2 only transitively" true
    (Relation.mem (Tuple.of_strs [ "e2" ]) fp_answers
     && not (Relation.mem (Tuple.of_strs [ "e2" ]) cq_answers))

let test_q4_rcqp () =
  (* Example 4.1 through the CRM lens *)
  match Rcqp.decide ~schema:Crm.db_schema ~master ~ccs:Crm.ccs_fd_dept (Lang.Q_cq Crm.q4) with
  | Rcqp.Nonempty _ -> ()
  | v -> Alcotest.fail ("expected nonempty, got " ^ Rcqp.verdict_name v)

let test_q2_tuples_rcqp () =
  (match
     Rcqp.decide ~schema:Crm.db_schema ~master ~ccs:Crm.ccs_fd_dept (Lang.Q_cq Crm.q2_tuples)
   with
   | Rcqp.Empty _ -> ()
   | v -> Alcotest.fail ("expected empty, got " ^ Rcqp.verdict_name v));
  match
    Rcqp.decide ~schema:Crm.db_schema ~master ~ccs:Crm.ccs_fd_supt (Lang.Q_cq Crm.q2_tuples)
  with
  | Rcqp.Nonempty _ -> ()
  | v -> Alcotest.fail ("expected nonempty, got " ^ Rcqp.verdict_name v)

(* ------------------------------------------------------------------ *)
(* The ERP workload *)

let erp_master =
  Erp.master
    ~employees:[ ("e0", "eng"); ("e1", "eng"); ("e2", "sales") ]
    ~projects:[ ("apollo", "eng"); ("zeus", "sales") ]

let erp_db =
  Erp.db
    ~assignments:[ ("e0", "apollo", "lead"); ("e1", "apollo", "dev") ]
    ~timesheets:[ ("e0", "apollo", 12) ]

let test_erp_partially_closed () =
  Alcotest.(check bool) "closed" true
    (Containment.holds_all ~db:erp_db ~master:erp_master Erp.ccs)

let test_erp_staffing_incomplete () =
  match
    Rcdp.decide ~schema:Erp.db_schema ~master:erp_master ~ccs:Erp.ccs ~db:erp_db
      (Lang.Q_cq (Erp.q_staff "apollo"))
  with
  | Rcdp.Incomplete cex ->
    Alcotest.(check bool) "e2 can still join" true
      (Tuple.equal cex.Rcdp.cex_answer (Tuple.of_strs [ "e2" ]))
  | Rcdp.Complete -> Alcotest.fail "e2 is unassigned, staffing cannot be complete"

let test_erp_staffing_complete_when_saturated () =
  let full =
    Erp.db
      ~assignments:
        [ ("e0", "apollo", "lead"); ("e1", "apollo", "dev"); ("e2", "apollo", "qa") ]
      ~timesheets:[]
  in
  Alcotest.(check bool) "all employees assigned" true
    (Rcdp.decide ~schema:Erp.db_schema ~master:erp_master ~ccs:Erp.ccs ~db:full
       (Lang.Q_cq (Erp.q_staff "apollo"))
     = Rcdp.Complete)

let test_erp_role_pinned_by_fd () =
  Alcotest.(check bool) "role complete" true
    (Rcdp.decide ~schema:Erp.db_schema ~master:erp_master ~ccs:Erp.ccs ~db:erp_db
       (Lang.Q_cq (Erp.q_role "e0" "apollo"))
     = Rcdp.Complete);
  (* without the FD it is not *)
  Alcotest.(check bool) "role open without the FD" true
    (Rcdp.decide ~schema:Erp.db_schema ~master:erp_master
       ~ccs:[ Erp.cc_assigned_employees; Erp.cc_assigned_projects ] ~db:erp_db
       (Lang.Q_cq (Erp.q_role "e0" "apollo"))
     <> Rcdp.Complete)

let test_erp_billing_not_completable () =
  match
    Rcqp.decide ~schema:Erp.db_schema ~master:erp_master ~ccs:Erp.ccs
      (Lang.Q_cq (Erp.q_billed "apollo"))
  with
  | Rcqp.Empty _ -> ()
  | v -> Alcotest.fail ("expected empty, got " ^ Rcqp.verdict_name v)

let test_erp_projects_of () =
  Alcotest.(check bool) "e0 on apollo" true
    (Relation.mem (Tuple.of_strs [ "apollo" ]) (Cq.eval erp_db (Erp.q_projects_of "e0")))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_keep_monotone =
  QCheck2.Test.make ~name:"higher keep fractions keep more rows" ~count:20
    QCheck2.Gen.(pair (int_bound 100) (int_bound 100))
    (fun (a, b) ->
      let lo = float_of_int (min a b) /. 100. in
      let hi = float_of_int (max a b) /. 100. in
      let size k =
        Relation.cardinal
          (Database.relation (Crm.db ~master ~keep:k ~supported_by:[] ()) "Cust")
      in
      (* same seed: the kept set at lo is a subset of the one at hi *)
      size lo <= size hi)

let prop_generated_db_partially_closed =
  QCheck2.Test.make ~name:"generated databases are partially closed" ~count:20
    QCheck2.Gen.(int_bound 100)
    (fun pct ->
      let db =
        Crm.db ~master ~keep:(float_of_int pct /. 100.) ~supported_by:[ ("e0", [ "d0" ]) ] ()
      in
      Containment.holds_all ~db ~master
        [ Crm.cc_supported_domestic; Crm.cc_domestic_customers ])

let properties =
  List.map QCheck_alcotest.to_alcotest [ prop_keep_monotone; prop_generated_db_partially_closed ]

(* ------------------------------------------------------------------ *)
(* ric gen families *)

module Scenario = Ric_text.Scenario

let test_gen_deterministic () =
  List.iter
    (fun family ->
      let name = Gen.family_to_string family in
      let a = Gen.to_string family ~tuples:400 ~seed:3 ~rung:2 in
      let b = Gen.to_string family ~tuples:400 ~seed:3 ~rung:2 in
      let c = Gen.to_string family ~tuples:400 ~seed:4 ~rung:3 in
      Alcotest.(check string) (name ^ ": same seed, same bytes") a b;
      Alcotest.(check bool) (name ^ ": different seed, different bytes") true (a <> c))
    [ Gen.Triple; Gen.Telco; Gen.Ladder ]

let test_gen_triple_roundtrip () =
  let src = Gen.to_string Gen.Triple ~tuples:300 ~seed:1 ~rung:1 in
  let sc = Scenario.parse src in
  (* generated data is partially closed by construction *)
  Alcotest.(check bool) "partially closed" true
    (Containment.holds_all ~db:sc.Scenario.db ~master:sc.Scenario.master
       (Scenario.all_ccs sc));
  (* row budget: data rows minus duplicates, never more *)
  let emitted = Gen.total_rows Gen.Triple ~tuples:300 in
  let landed =
    Relation.cardinal (Database.relation sc.Scenario.db "T")
    + Relation.cardinal (Database.relation sc.Scenario.master "MEnt")
  in
  Alcotest.(check bool) "row count bounded by emission" true (landed <= emitted && landed > 0);
  (* pp ∘ parse round-trips the generated scenario *)
  let printed = Format.asprintf "%a" Scenario.pp sc in
  let sc2 = Scenario.parse printed in
  Alcotest.(check bool) "db survives" true (Database.equal sc.Scenario.db sc2.Scenario.db);
  Alcotest.(check bool) "master survives" true
    (Database.equal sc.Scenario.master sc2.Scenario.master);
  (* and the streaming loader agrees with the slurp baseline on it *)
  let slurped = Scenario.parse_slurp src in
  Alcotest.(check bool) "stream ≡ slurp" true
    (Database.equal sc.Scenario.db slurped.Scenario.db
     && Database.equal sc.Scenario.master slurped.Scenario.master)

let test_gen_triple_decides () =
  let sc = Scenario.parse (Gen.to_string Gen.Triple ~tuples:200 ~seed:7 ~rung:1) in
  match Scenario.find_query sc "QT" with
  | None -> Alcotest.fail "triple family must declare QT"
  | Some q ->
    (* an open predicate pool over a bounded registry: never complete *)
    (match
       Rcdp.decide ~schema:sc.Scenario.db_schema ~master:sc.Scenario.master
         ~ccs:(Scenario.all_ccs sc) ~db:sc.Scenario.db q
     with
    | Rcdp.Incomplete _ -> ()
    | Rcdp.Complete -> Alcotest.fail "QT over generated triples cannot be complete")

let test_gen_ladder_decides () =
  let sc = Gen.ladder_scenario ~rung:1 ~seed:5 in
  (* rung 1 is tiny: the Σ₂ᵖ decider must terminate with a verdict *)
  match Scenario.find_query sc "QL" with
  | None -> Alcotest.fail "ladder family must declare QL"
  | Some q ->
    (match
       Rcdp.decide ~schema:sc.Scenario.db_schema ~master:sc.Scenario.master
         ~ccs:(Scenario.all_ccs sc) ~db:sc.Scenario.db q
     with
    | Rcdp.Complete | Rcdp.Incomplete _ -> ())

let test_gen_rejects_bad_sizes () =
  List.iter
    (fun tuples ->
      Alcotest.(check bool)
        (Printf.sprintf "tuples %d rejected" tuples)
        true
        (try
           ignore (Gen.to_string Gen.Triple ~tuples ~seed:0 ~rung:1);
           false
         with Invalid_argument _ -> true))
    [ 0; -1; Gen.max_tuples + 1 ]

let () =
  Alcotest.run "workloads"
    [
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "partially closed" `Quick test_partially_closed;
          Alcotest.test_case "international unbounded" `Quick test_international_not_bounded;
        ] );
      ( "paradigm 1 (assess)",
        [
          Alcotest.test_case "full ⇒ complete" `Quick test_q0_complete_when_full;
          Alcotest.test_case "missing 908 ⇒ incomplete" `Quick test_q0_incomplete_when_missing;
          Alcotest.test_case "missing 212 still complete" `Quick
            test_q0_missing_non_908_customer_is_fine;
        ] );
      ( "paradigm 2 (collect)",
        [
          Alcotest.test_case "audit suggests tuples" `Quick test_audit_suggests_missing_tuples;
          Alcotest.test_case "already complete" `Quick test_audit_already_complete;
        ] );
      ( "paradigm 3 (expand master)",
        [ Alcotest.test_case "Q'0 not completable" `Quick test_q0_all_customers_not_completable ] );
      ( "example 1.1",
        [
          Alcotest.test_case "Q1" `Quick test_q1_complete_when_support_saturated;
          Alcotest.test_case "Q2 with cap" `Quick test_q2_with_support_cap;
          Alcotest.test_case "Q3 FP vs CQ" `Quick test_q3_datalog_vs_cq;
          Alcotest.test_case "Q4 RCQP" `Quick test_q4_rcqp;
          Alcotest.test_case "Q2 tuples RCQP" `Quick test_q2_tuples_rcqp;
        ] );
      ( "erp",
        [
          Alcotest.test_case "partially closed" `Quick test_erp_partially_closed;
          Alcotest.test_case "staffing incomplete" `Quick test_erp_staffing_incomplete;
          Alcotest.test_case "staffing saturated" `Quick test_erp_staffing_complete_when_saturated;
          Alcotest.test_case "role pinned by FD" `Quick test_erp_role_pinned_by_fd;
          Alcotest.test_case "billing hopeless" `Quick test_erp_billing_not_completable;
          Alcotest.test_case "projects of" `Quick test_erp_projects_of;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic by seed" `Quick test_gen_deterministic;
          Alcotest.test_case "triple round trip" `Quick test_gen_triple_roundtrip;
          Alcotest.test_case "triple decides" `Quick test_gen_triple_decides;
          Alcotest.test_case "ladder decides" `Quick test_gen_ladder_decides;
          Alcotest.test_case "size bounds" `Quick test_gen_rejects_bad_sizes;
        ] );
      ("properties", properties);
    ]
